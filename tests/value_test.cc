#include "json/value.h"

#include <gtest/gtest.h>

namespace dyno {
namespace {

TEST(ValueTest, ScalarConstructionAndAccess) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::Int(-42).int_value(), -42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("abc").string_value(), "abc");
}

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value::Null().type(), Value::Type::kNull);
  EXPECT_EQ(Value::Bool(false).type(), Value::Type::kBool);
  EXPECT_EQ(Value::Int(1).type(), Value::Type::kInt);
  EXPECT_EQ(Value::Double(1.0).type(), Value::Type::kDouble);
  EXPECT_EQ(Value::String("").type(), Value::Type::kString);
  EXPECT_EQ(Value::Array({}).type(), Value::Type::kArray);
  EXPECT_EQ(Value::Struct({}).type(), Value::Type::kStruct);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(7.1).Compare(Value::Int(7)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, ArrayComparisonIsLexicographic) {
  Value a = Value::Array({Value::Int(1), Value::Int(2)});
  Value b = Value::Array({Value::Int(1), Value::Int(3)});
  Value c = Value::Array({Value::Int(1)});
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_GT(a.Compare(c), 0);
  EXPECT_EQ(a.Compare(a), 0);
}

TEST(ValueTest, CrossTypeOrderingIsByTypeTag) {
  // null < bool < numeric < string < array < struct.
  EXPECT_LT(Value::Null().Compare(Value::Bool(false)), 0);
  EXPECT_LT(Value::Bool(true).Compare(Value::Int(0)), 0);
  EXPECT_LT(Value::Int(999).Compare(Value::String("")), 0);
  EXPECT_LT(Value::String("zzz").Compare(Value::Array({})), 0);
  EXPECT_LT(Value::Array({}).Compare(Value::Struct({})), 0);
}

TEST(ValueTest, FieldLookup) {
  Value row = MakeRow({{"a", Value::Int(1)}, {"b", Value::String("x")}});
  ASSERT_NE(row.FindField("a"), nullptr);
  EXPECT_EQ(row.FindField("a")->int_value(), 1);
  EXPECT_EQ(row.FindField("missing"), nullptr);
  EXPECT_EQ(Value::Int(1).FindField("a"), nullptr);
}

TEST(ValueTest, ElementLookup) {
  Value arr = Value::Array({Value::Int(10), Value::Int(20)});
  ASSERT_NE(arr.FindElement(1), nullptr);
  EXPECT_EQ(arr.FindElement(1)->int_value(), 20);
  EXPECT_EQ(arr.FindElement(2), nullptr);
  EXPECT_EQ(Value::Int(1).FindElement(0), nullptr);
}

TEST(ValueTest, HashEqualForEqualValues) {
  Value a = MakeRow({{"k", Value::Int(7)}, {"s", Value::String("v")}});
  Value b = MakeRow({{"k", Value::Int(7)}, {"s", Value::String("v")}});
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_EQ(Value::Int(5).Hash(), Value::Double(5.0).Hash());
}

TEST(ValueTest, HashDiffersForDifferentValues) {
  EXPECT_NE(Value::Int(1).Hash(), Value::Int(2).Hash());
  EXPECT_NE(Value::String("a").Hash(), Value::String("b").Hash());
}

TEST(ValueTest, EncodeDecodeRoundTripScalars) {
  std::vector<Value> values = {
      Value::Null(),           Value::Bool(true),
      Value::Int(0),           Value::Int(-1234567),
      Value::Int(INT64_MAX),   Value::Int(INT64_MIN),
      Value::Double(3.14159),  Value::Double(-0.0),
      Value::String(""),       Value::String("hello world"),
  };
  for (const Value& v : values) {
    std::string buf;
    v.EncodeTo(&buf);
    EXPECT_EQ(buf.size(), v.EncodedSize()) << v.ToString();
    size_t offset = 0;
    auto decoded = Value::Decode(buf, &offset);
    ASSERT_TRUE(decoded.ok()) << v.ToString();
    EXPECT_EQ(decoded->Compare(v), 0) << v.ToString();
    EXPECT_EQ(offset, buf.size());
  }
}

TEST(ValueTest, EncodeDecodeRoundTripNested) {
  Value v = MakeRow({
      {"id", Value::Int(42)},
      {"addr", Value::Array({Value::Struct({{"zip", Value::Int(94301)},
                                            {"state", Value::String("CA")}}),
                             Value::Null()})},
      {"score", Value::Double(1.5)},
  });
  std::string buf;
  v.EncodeTo(&buf);
  EXPECT_EQ(buf.size(), v.EncodedSize());
  size_t offset = 0;
  auto decoded = Value::Decode(buf, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->Compare(v), 0);
}

TEST(ValueTest, DecodeTruncatedFails) {
  Value v = Value::String("hello");
  std::string buf;
  v.EncodeTo(&buf);
  buf.resize(buf.size() - 2);
  size_t offset = 0;
  EXPECT_FALSE(Value::Decode(buf, &offset).ok());
}

TEST(ValueTest, MultipleValuesDecodeSequentially) {
  std::string buf;
  Value::Int(1).EncodeTo(&buf);
  Value::String("two").EncodeTo(&buf);
  Value::Double(3.0).EncodeTo(&buf);
  size_t offset = 0;
  EXPECT_EQ(Value::Decode(buf, &offset)->int_value(), 1);
  EXPECT_EQ(Value::Decode(buf, &offset)->string_value(), "two");
  EXPECT_DOUBLE_EQ(Value::Decode(buf, &offset)->double_value(), 3.0);
  EXPECT_EQ(offset, buf.size());
}

TEST(ValueTest, ToStringRendersJson) {
  Value v = MakeRow({{"a", Value::Int(1)},
                     {"b", Value::Array({Value::String("x")})}});
  EXPECT_EQ(v.ToString(), "{a: 1, b: [\"x\"]}");
}

TEST(ValueTest, SharedStructureIsCheapToCopy) {
  ArrayElements big;
  for (int i = 0; i < 1000; ++i) big.push_back(Value::Int(i));
  Value a = Value::Array(std::move(big));
  Value b = a;  // shares the underlying array
  EXPECT_EQ(a.Compare(b), 0);
  EXPECT_EQ(&a.array(), &b.array());
}

}  // namespace
}  // namespace dyno
