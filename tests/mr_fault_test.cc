// The engine's fault model: deterministic injected task failures with
// retry/backoff, straggler slowdowns with speculative execution, retry
// exhaustion failing the job, and failed jobs draining cleanly while the
// engine keeps serving other work.

#include <gtest/gtest.h>

#include "mr/engine.h"
#include "storage/dfs.h"

namespace dyno {
namespace {

Value Row(int64_t id, int64_t group) {
  return MakeRow({{"id", Value::Int(id)}, {"g", Value::Int(group)}});
}

std::shared_ptr<DfsFile> MakeInput(Dfs* dfs, int rows,
                                   const std::string& path,
                                   uint64_t split_bytes = 128) {
  std::vector<Value> data;
  for (int i = 0; i < rows; ++i) data.push_back(Row(i, i % 7));
  auto file = WriteRows(dfs, path, data, split_bytes);
  EXPECT_TRUE(file.ok());
  return *file;
}

ClusterConfig BaseConfig() {
  ClusterConfig config;
  config.job_startup_ms = 1000;
  config.map_slots = 4;
  config.reduce_slots = 2;
  // Tests pin their own fault settings; the ctest fault preset's env vars
  // must not override them.
  config.faults.use_env_defaults = false;
  return config;
}

JobSpec CountByGroup(std::shared_ptr<DfsFile> input,
                     const std::string& out_path) {
  JobSpec spec;
  spec.name = "count-by-group:" + out_path;
  spec.output_path = out_path;
  MapInput mi;
  mi.file = std::move(input);
  mi.map_fn = [](const Value& record, MapContext* ctx) -> Status {
    ctx->Emit(*record.FindField("g"), Value::Int(1));
    return Status::OK();
  };
  spec.inputs = {std::move(mi)};
  spec.reduce_fn = [](const Value& key, const std::vector<Value>& values,
                      ReduceContext* ctx) -> Status {
    ctx->Output(MakeRow(
        {{"g", key},
         {"n", Value::Int(static_cast<int64_t>(values.size()))}}));
    return Status::OK();
  };
  return spec;
}

TEST(MrFaultTest, RetriesMakeInjectedFailuresTransparent) {
  Dfs dfs;
  ClusterConfig config = BaseConfig();
  config.faults.seed = 11;
  config.faults.task_failure_rate = 0.25;
  config.faults.max_task_attempts = 8;
  config.faults.retry_backoff_ms = 200;
  MapReduceEngine engine(&dfs, config);

  auto input = MakeInput(&dfs, 400, "/in");
  auto result = engine.Submit(CountByGroup(input, "/out"));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok()) << result->status.ToString();

  // Failures happened and every one was retried away.
  EXPECT_GT(result->task_failures_injected, 0);
  EXPECT_GT(result->task_retries, 0);
  EXPECT_GE(result->task_retries, result->task_failures_injected);

  // The job's observable results are exactly those of a fault-free run:
  // counters count each logical task once (failed attempts never ran their
  // data flow, retried attempts are not double-counted).
  EXPECT_EQ(result->counters.map_input_records, 400u);
  EXPECT_EQ(result->counters.map_input_bytes, input->num_bytes());
  EXPECT_EQ(result->counters.map_output_records, 400u);
  EXPECT_EQ(result->counters.output_records, 7u);
  EXPECT_EQ(result->output->num_records(), 7u);
}

TEST(MrFaultTest, RetryExhaustionFailsTheJob) {
  Dfs dfs;
  ClusterConfig config = BaseConfig();
  config.faults.seed = 3;
  config.faults.task_failure_rate = 1.0;  // every attempt dies
  config.faults.max_task_attempts = 3;
  config.faults.retry_backoff_ms = 100;
  MapReduceEngine engine(&dfs, config);

  auto input = MakeInput(&dfs, 60, "/in");
  JobSpec spec;
  spec.name = "doomed";
  spec.output_path = "/out";
  MapInput mi;
  mi.file = input;
  mi.map_fn = [](const Value&, MapContext*) -> Status {
    return Status::OK();
  };
  spec.inputs = {mi};

  auto result = engine.Submit(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->status.ok());
  EXPECT_NE(result->status.ToString().find("3 attempts"), std::string::npos)
      << result->status.ToString();
  // Some task burned through all its attempts.
  EXPECT_GE(result->task_failures_injected, config.faults.max_task_attempts);
  // The failed job's output was deleted by the drain.
  EXPECT_EQ(result->output, nullptr);
  EXPECT_FALSE(dfs.Open("/out").ok());
}

TEST(MrFaultTest, RealTaskErrorsAreRetriedThenExhausted) {
  Dfs dfs;
  ClusterConfig config = BaseConfig();
  config.faults.seed = 5;
  // Enable the fault model (and thus retries) without any injection noise:
  // stragglers only affect timing.
  config.faults.task_failure_rate = 0.0;
  config.faults.straggler_rate = 0.2;
  config.faults.max_task_attempts = 4;
  config.faults.retry_backoff_ms = 50;
  MapReduceEngine engine(&dfs, config);

  auto input = MakeInput(&dfs, 60, "/in");
  JobSpec spec = CountByGroup(input, "/out");
  spec.reduce_fn = [](const Value&, const std::vector<Value>&,
                      ReduceContext*) -> Status {
    return Status::Internal("deterministic reduce bug");
  };

  auto result = engine.Submit(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->status.ok());
  // The deterministic error failed every attempt of the first reduce task.
  EXPECT_NE(result->status.ToString().find("4 attempts"), std::string::npos)
      << result->status.ToString();
  EXPECT_NE(result->status.ToString().find("deterministic reduce bug"),
            std::string::npos)
      << result->status.ToString();
  EXPECT_GE(result->task_retries, config.faults.max_task_attempts - 1);
  EXPECT_EQ(result->output, nullptr);
}

TEST(MrFaultTest, SpeculativeBackupBeatsStragglerAndIsAccounted) {
  Dfs dfs;
  ClusterConfig config = BaseConfig();
  config.map_slots = 8;
  config.faults.seed = 21;
  config.faults.task_failure_rate = 0.0;
  config.faults.straggler_rate = 0.2;
  config.faults.straggler_slowdown = 10.0;
  config.faults.speculative_slowness_threshold = 1.5;

  auto run = [&](bool speculation) {
    Dfs local_dfs;
    ClusterConfig c = config;
    c.faults.speculative_execution = speculation;
    MapReduceEngine engine(&local_dfs, c);
    auto input = MakeInput(&local_dfs, 600, "/in");
    JobSpec spec;
    spec.name = "scan";
    spec.output_path = "/out";
    MapInput mi;
    mi.file = input;
    mi.map_fn = [](const Value& record, MapContext* ctx) -> Status {
      ctx->Output(record);
      return Status::OK();
    };
    spec.inputs = {mi};
    auto result = engine.Submit(spec);
    EXPECT_TRUE(result.ok());
    EXPECT_TRUE(result->status.ok());
    return std::move(*result);
  };

  JobResult with_spec = run(true);
  JobResult without_spec = run(false);

  // Stragglers got backed up and at least one backup won its race.
  EXPECT_GT(with_spec.speculative_launches, 0);
  EXPECT_GT(with_spec.speculative_wins, 0);
  EXPECT_EQ(without_spec.speculative_launches, 0);

  // Speculation only re-runs already-committed work: outputs are identical.
  EXPECT_EQ(with_spec.output->num_records(), 600u);
  EXPECT_EQ(without_spec.output->num_records(), 600u);
  EXPECT_EQ(with_spec.counters.map_input_records,
            without_spec.counters.map_input_records);

  // And it pays off: cutting the straggler tail cannot make the job slower.
  EXPECT_LT(with_spec.Elapsed(), without_spec.Elapsed());
}

TEST(MrFaultTest, FailedJobDrainsWhileConcurrentJobCompletes) {
  Dfs dfs;
  ClusterConfig config = BaseConfig();
  config.faults.seed = 9;
  config.faults.task_failure_rate = 0.0;
  config.faults.straggler_rate = 0.1;  // model on, no injected failures
  config.faults.max_task_attempts = 2;
  config.faults.retry_backoff_ms = 100;
  MapReduceEngine engine(&dfs, config);

  auto poison_input = MakeInput(&dfs, 120, "/in_poison");
  JobSpec poison;
  poison.name = "poison";
  poison.output_path = "/out_poison";
  {
    MapInput mi;
    mi.file = poison_input;
    mi.map_fn = [](const Value& record, MapContext* ctx) -> Status {
      if (record.FindField("id")->int_value() == 60) {
        return Status::Internal("poisoned record");
      }
      ctx->Output(record);
      return Status::OK();
    };
    poison.inputs = {mi};
  }
  auto healthy_input = MakeInput(&dfs, 120, "/in_healthy");
  JobSpec healthy = CountByGroup(healthy_input, "/out_healthy");

  auto results = engine.SubmitAll({poison, healthy});
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE((*results)[0].status.ok());
  EXPECT_EQ((*results)[0].output, nullptr);
  EXPECT_FALSE(dfs.Open("/out_poison").ok());
  ASSERT_TRUE((*results)[1].status.ok());
  EXPECT_EQ((*results)[1].counters.map_input_records, 120u);
  EXPECT_EQ((*results)[1].output->num_records(), 7u);

  // The engine stays usable after the drain: disable injection and run a
  // fresh job on the same cluster clock.
  ClusterConfig clean = BaseConfig();
  engine.set_config(clean);
  auto again = engine.Submit(CountByGroup(healthy_input, "/out_again"));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->status.ok());
  EXPECT_EQ(again->output->num_records(), 7u);
}

TEST(MrFaultTest, FailedAttemptIsBilledForItsPartialScan) {
  // Legacy fail-fast mode (fault model off): a map task that errors
  // mid-split must be billed for the bytes it actually read — a task dying
  // on its first record finishes earlier than one dying on its last.
  auto run_with_error_at = [](int64_t bad_id) {
    Dfs dfs;
    MapReduceEngine engine(&dfs, BaseConfig());
    std::vector<Value> data;
    for (int i = 0; i < 400; ++i) data.push_back(Row(i, 0));
    auto input = WriteRows(&dfs, "/in", data, /*split_bytes=*/1 << 20);
    EXPECT_TRUE(input.ok());  // one big split -> one map task
    JobSpec spec;
    spec.name = "err";
    spec.output_path = "/out";
    MapInput mi;
    mi.file = *input;
    mi.map_fn = [bad_id](const Value& record, MapContext* ctx) -> Status {
      if (record.FindField("id")->int_value() == bad_id) {
        return Status::Internal("bad record");
      }
      ctx->Output(record);
      return Status::OK();
    };
    spec.inputs = {mi};
    auto result = engine.Submit(spec);
    EXPECT_TRUE(result.ok());
    EXPECT_FALSE(result->status.ok());
    return result->Elapsed();
  };

  SimMillis early = run_with_error_at(0);
  SimMillis late = run_with_error_at(399);
  EXPECT_LT(early, late)
      << "read time must scale with the bytes the attempt consumed";
}

TEST(MrFaultTest, BackoffCapBoundsRetryDelays) {
  // Attempt n of a task waits min(retry_backoff_ms * 2^(n-1),
  // max_backoff_ms): without the cap the exponential dominates the job
  // tail as soon as any task fails a few times.
  auto run = [](SimMillis max_backoff) {
    Dfs dfs;
    ClusterConfig config = BaseConfig();
    config.faults.seed = 11;
    config.faults.task_failure_rate = 0.5;
    config.faults.max_task_attempts = 12;
    config.faults.retry_backoff_ms = 500;
    config.faults.retry_jitter_fraction = 0.0;
    config.faults.max_backoff_ms = max_backoff;
    MapReduceEngine engine(&dfs, config);
    auto input = MakeInput(&dfs, 400, "/in");
    auto result = engine.Submit(CountByGroup(input, "/out"));
    EXPECT_TRUE(result.ok());
    EXPECT_TRUE(result->status.ok()) << result->status.ToString();
    return std::move(*result);
  };

  JobResult capped = run(600);
  JobResult uncapped = run(0);  // <= 0 disables the cap
  EXPECT_GT(capped.task_retries, 0);
  EXPECT_LT(capped.Elapsed(), uncapped.Elapsed())
      << "the cap must shorten the retry tail";
  // Backoff shapes timing only; the work done is the same.
  EXPECT_EQ(capped.counters.map_input_records, 400u);
  EXPECT_EQ(uncapped.counters.map_input_records, 400u);
  EXPECT_EQ(capped.counters.output_records, uncapped.counters.output_records);
}

TEST(MrFaultTest, RetryJitterIsDeterministicPerConfig) {
  auto run = [](double jitter) {
    Dfs dfs;
    ClusterConfig config = BaseConfig();
    config.faults.seed = 7;
    config.faults.task_failure_rate = 0.5;
    config.faults.max_task_attempts = 12;
    config.faults.retry_backoff_ms = 200;
    config.faults.retry_jitter_fraction = jitter;
    MapReduceEngine engine(&dfs, config);
    auto input = MakeInput(&dfs, 400, "/in");
    auto result = engine.Submit(CountByGroup(input, "/out"));
    EXPECT_TRUE(result.ok());
    EXPECT_TRUE(result->status.ok()) << result->status.ToString();
    return std::move(*result);
  };

  // The jitter is drawn from the seeded fault stream, not the wall clock:
  // the same config replays to the millisecond.
  JobResult a = run(0.25);
  JobResult b = run(0.25);
  EXPECT_EQ(a.Elapsed(), b.Elapsed());
  EXPECT_EQ(a.task_retries, b.task_retries);
  EXPECT_EQ(a.task_failures_injected, b.task_failures_injected);

  // And it is engaged: turning it off changes retry timing but nothing
  // observable about the output.
  JobResult c = run(0.0);
  EXPECT_NE(a.Elapsed(), c.Elapsed());
  EXPECT_EQ(a.counters.output_records, c.counters.output_records);
  EXPECT_EQ(a.output->num_records(), c.output->num_records());
}

TEST(MrFaultTest, ReduceExhaustionDrainsWhileConcurrentJobCompletes) {
  Dfs dfs;
  ClusterConfig config = BaseConfig();
  config.faults.seed = 13;
  config.faults.straggler_rate = 0.1;  // model on, no injected failures
  config.faults.max_task_attempts = 3;
  config.faults.retry_backoff_ms = 50;
  MapReduceEngine engine(&dfs, config);

  auto doomed_input = MakeInput(&dfs, 120, "/in_doomed");
  JobSpec doomed = CountByGroup(doomed_input, "/out_doomed");
  doomed.reduce_fn = [](const Value& key, const std::vector<Value>&,
                        ReduceContext*) -> Status {
    if (key.int_value() == 3) return Status::Internal("poisoned group");
    return Status::OK();
  };
  auto healthy_input = MakeInput(&dfs, 120, "/in_healthy");
  JobSpec healthy = CountByGroup(healthy_input, "/out_healthy");

  auto results = engine.SubmitAll({doomed, healthy});
  ASSERT_TRUE(results.ok());
  const JobResult& failed = (*results)[0];
  EXPECT_FALSE(failed.status.ok());
  EXPECT_NE(failed.status.ToString().find("3 attempts"), std::string::npos)
      << failed.status.ToString();
  // Every reduce attempt after the first was a retry, and the drain reports
  // no data counters: a failed job contributes nothing, not partial work.
  EXPECT_GE(failed.task_retries, config.faults.max_task_attempts - 1);
  EXPECT_EQ(failed.counters.map_input_records, 0u);
  EXPECT_EQ(failed.counters.output_records, 0u);
  // Failed-job drain: no output handle, no file, no partial rows.
  EXPECT_EQ(failed.output, nullptr);
  EXPECT_FALSE(dfs.Open("/out_doomed").ok());

  const JobResult& ok = (*results)[1];
  ASSERT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_EQ(ok.counters.map_input_records, 120u);
  EXPECT_EQ(ok.output->num_records(), 7u);
}

TEST(MrFaultTest, ReduceRetryAfterShuffleFailureIsTransparent) {
  // A node crash while reducers run (or wait) invalidates the maps resident
  // on it: reducers hit shuffle-fetch failures and are re-queued behind the
  // re-executed maps. The retried reducers must not double-count anything.
  ClusterConfig config = BaseConfig();
  config.num_nodes = 2;
  config.reduce_slots = 2;
  config.faults.retry_backoff_ms = 50;
  config.faults.node_recovery_ms = 400;

  auto run = [&config](std::vector<FaultConfig::ScriptedNodeCrash> crashes) {
    Dfs dfs;
    ClusterConfig c = config;
    c.faults.scripted_node_crashes = std::move(crashes);
    MapReduceEngine engine(&dfs, c);
    auto input = MakeInput(&dfs, 400, "/in");
    JobSpec spec = CountByGroup(input, "/out");
    spec.num_reduce_tasks = 4;  // more reducers than slots -> pending ones
    auto result = engine.Submit(spec);
    EXPECT_TRUE(result.ok());
    return std::move(*result);
  };

  JobResult clean = run({});
  ASSERT_TRUE(clean.status.ok());

  bool hit_reduce_phase = false;
  for (int pct : {98, 96, 94, 92, 90, 85, 80}) {
    SimMillis window = clean.Elapsed() - config.job_startup_ms;
    JobResult faulty =
        run({{config.job_startup_ms + window * pct / 100, 1}});
    ASSERT_TRUE(faulty.status.ok())
        << "crash at " << pct << "%: " << faulty.status.ToString();
    EXPECT_EQ(faulty.counters.map_input_records,
              clean.counters.map_input_records);
    EXPECT_EQ(faulty.counters.map_output_records,
              clean.counters.map_output_records);
    EXPECT_EQ(faulty.counters.output_records, clean.counters.output_records);
    EXPECT_EQ(faulty.output->num_records(), clean.output->num_records());
    if (faulty.shuffle_fetch_retries > 0) {
      EXPECT_GT(faulty.maps_invalidated, 0);
      hit_reduce_phase = true;
      break;
    }
  }
  EXPECT_TRUE(hit_reduce_phase)
      << "no crash placement caught reducers behind a re-shuffle";
}

}  // namespace
}  // namespace dyno
