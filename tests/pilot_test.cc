#include "pilot/pilot_runner.h"

#include <gtest/gtest.h>

#include "tpch/queries.h"

namespace dyno {
namespace {

class PilotTest : public ::testing::Test {
 protected:
  PilotTest() : catalog_(&dfs_), engine_(&dfs_, MakeConfig()) {
    // One table with 10k rows in many splits; a 50% filter column and a
    // key column with 1000 distinct values.
    std::vector<Value> rows;
    for (int i = 0; i < 10000; ++i) {
      rows.push_back(MakeRow({{"id", Value::Int(i)},
                              {"k", Value::Int(i % 1000)},
                              {"flag", Value::Int(i % 2)},
                              {"pad", Value::String(std::string(30, 'p'))}}));
    }
    EXPECT_TRUE(catalog_.CreateTable("big", rows).ok());
    std::vector<Value> small;
    for (int i = 0; i < 200; ++i) {
      small.push_back(MakeRow({{"sid", Value::Int(i)},
                               {"sk", Value::Int(i % 50)}}));
    }
    EXPECT_TRUE(catalog_.CreateTable("small", small).ok());
  }

  static ClusterConfig MakeConfig() {
    ClusterConfig config;
    config.job_startup_ms = 1000;
    config.map_slots = 8;
    return config;
  }

  LeafExpr BigLeaf(ExprPtr filter = nullptr) {
    LeafExpr leaf;
    leaf.alias = "b";
    leaf.table = "big";
    leaf.filter = std::move(filter);
    leaf.join_columns = {"k"};
    return leaf;
  }

  LeafExpr SmallLeaf() {
    LeafExpr leaf;
    leaf.alias = "s";
    leaf.table = "small";
    leaf.join_columns = {"sk"};
    return leaf;
  }

  Dfs dfs_;
  Catalog catalog_;
  MapReduceEngine engine_;
  StatsStore store_;
};

TEST_F(PilotTest, ParallelModeEstimatesCardinality) {
  PilotRunOptions options;
  options.k = 512;
  options.mode = PilotRunOptions::Mode::kParallel;
  PilotRunner runner(&engine_, &catalog_, &store_, options);
  auto report = runner.Run({BigLeaf(Eq(Col("flag"), LitInt(1)))});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->leaves.size(), 1u);
  const TableStats& stats = report->leaves[0].stats;
  // True post-filter cardinality is 5000; the sample-based estimate should
  // land within a factor-ish window.
  EXPECT_GT(stats.cardinality, 3000.0);
  EXPECT_LT(stats.cardinality, 7500.0);
  EXPECT_TRUE(stats.from_sample);
}

TEST_F(PilotTest, SerialModeEstimatesCardinality) {
  PilotRunOptions options;
  options.k = 512;
  options.mode = PilotRunOptions::Mode::kSerial;
  PilotRunner runner(&engine_, &catalog_, &store_, options);
  auto report = runner.Run({BigLeaf(Eq(Col("flag"), LitInt(1)))});
  ASSERT_TRUE(report.ok());
  const TableStats& stats = report->leaves[0].stats;
  EXPECT_GT(stats.cardinality, 3000.0);
  EXPECT_LT(stats.cardinality, 7500.0);
}

TEST_F(PilotTest, ParallelFasterThanSerialForMultipleLeaves) {
  // ST pays job startup per leaf; MT pays it once.
  std::vector<LeafExpr> leaves = {BigLeaf(), SmallLeaf()};
  PilotRunOptions st;
  st.mode = PilotRunOptions::Mode::kSerial;
  st.reuse_stats = false;
  PilotRunOptions mt = st;
  mt.mode = PilotRunOptions::Mode::kParallel;
  PilotRunner st_runner(&engine_, &catalog_, &store_, st);
  PilotRunner mt_runner(&engine_, &catalog_, &store_, mt);
  auto st_report = st_runner.Run(leaves);
  auto mt_report = mt_runner.Run(leaves);
  ASSERT_TRUE(st_report.ok());
  ASSERT_TRUE(mt_report.ok());
  EXPECT_LT(mt_report->elapsed_ms, st_report->elapsed_ms);
}

TEST_F(PilotTest, StopsEarlyOnUnselectiveLeaf) {
  PilotRunOptions options;
  options.k = 256;
  PilotRunner runner(&engine_, &catalog_, &store_, options);
  auto report = runner.Run({BigLeaf()});
  ASSERT_TRUE(report.ok());
  // The pilot must not scan all 10k rows to produce 256 outputs.
  auto file = catalog_.OpenTable("big");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(report->leaves[0].full_output, nullptr)
      << "unselective leaf must not be fully materialized";
}

TEST_F(PilotTest, SelectiveLeafYieldsFullOutputForReuse) {
  // A filter so selective the whole table is consumed before k outputs:
  // the pilot output doubles as the leaf materialization (§4.1).
  PilotRunOptions options;
  options.k = 1024;
  PilotRunner runner(&engine_, &catalog_, &store_, options);
  auto report = runner.Run({BigLeaf(Lt(Col("id"), LitInt(50)))});
  ASSERT_TRUE(report.ok());
  ASSERT_NE(report->leaves[0].full_output, nullptr);
  EXPECT_EQ(report->leaves[0].full_output->num_records(), 50u);
  EXPECT_FALSE(report->leaves[0].stats.from_sample);
  EXPECT_DOUBLE_EQ(report->leaves[0].stats.cardinality, 50.0);
}

TEST_F(PilotTest, NdvEstimateReasonable) {
  PilotRunOptions options;
  options.k = 2048;
  PilotRunner runner(&engine_, &catalog_, &store_, options);
  auto report = runner.Run({BigLeaf()});
  ASSERT_TRUE(report.ok());
  double ndv = report->leaves[0].stats.ColumnNdv("k");
  // True NDV is 1000; linear extrapolation from a uniform sample can
  // overshoot, but must stay in a sane band.
  EXPECT_GT(ndv, 500.0);
  EXPECT_LT(ndv, 5000.0);
}

TEST_F(PilotTest, StatsReuseSkipsRuns) {
  PilotRunOptions options;
  options.reuse_stats = true;
  PilotRunner runner(&engine_, &catalog_, &store_, options);
  auto first = runner.Run({BigLeaf()});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->runs_executed, 1);
  auto second = runner.Run({BigLeaf()});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->runs_executed, 0);
  EXPECT_EQ(second->runs_skipped_cached, 1);
  EXPECT_DOUBLE_EQ(second->leaves[0].stats.cardinality,
                   first->leaves[0].stats.cardinality);
}

TEST_F(PilotTest, ReuseDisabledReruns) {
  PilotRunOptions options;
  options.reuse_stats = false;
  PilotRunner runner(&engine_, &catalog_, &store_, options);
  ASSERT_TRUE(runner.Run({BigLeaf()}).ok());
  auto second = runner.Run({BigLeaf()});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->runs_executed, 1);
}

TEST_F(PilotTest, UdfSelectivityMeasuredAccurately) {
  // The whole point of pilot runs: a UDF's selectivity is unknowable
  // statically but measurable on a sample.
  ExprPtr udf = MakeHashFilterUdf("pilot_udf", {"id"}, 0.2, 10.0);
  PilotRunOptions options;
  options.k = 512;
  PilotRunner runner(&engine_, &catalog_, &store_, options);
  auto report = runner.Run({BigLeaf(udf)});
  ASSERT_TRUE(report.ok());
  double est = report->leaves[0].stats.cardinality;
  EXPECT_GT(est, 0.10 * 10000);
  EXPECT_LT(est, 0.35 * 10000);
}

TEST_F(PilotTest, MissingTableFails) {
  LeafExpr leaf;
  leaf.alias = "x";
  leaf.table = "no_such_table";
  PilotRunner runner(&engine_, &catalog_, &store_, PilotRunOptions());
  EXPECT_FALSE(runner.Run({leaf}).ok());
}

TEST_F(PilotTest, MtScalesWithSampleNotTableSize) {
  // Duplicate the big table 4x larger; MT pilot time should grow far less
  // than 4x (Table 1: "performance of PILR_MT does not depend on the size
  // of the dataset").
  std::vector<Value> rows;
  for (int i = 0; i < 40000; ++i) {
    rows.push_back(MakeRow({{"id", Value::Int(i)},
                            {"k", Value::Int(i % 1000)},
                            {"flag", Value::Int(i % 2)},
                            {"pad", Value::String(std::string(30, 'p'))}}));
  }
  ASSERT_TRUE(catalog_.CreateTable("big4x", rows).ok());
  PilotRunOptions options;
  options.k = 512;
  options.reuse_stats = false;
  PilotRunner runner(&engine_, &catalog_, &store_, options);
  auto small_report = runner.Run({BigLeaf()});
  LeafExpr big_leaf = BigLeaf();
  big_leaf.table = "big4x";
  auto big_report = runner.Run({big_leaf});
  ASSERT_TRUE(small_report.ok());
  ASSERT_TRUE(big_report.ok());
  EXPECT_LT(big_report->elapsed_ms, 2 * small_report->elapsed_ms);
}

}  // namespace
}  // namespace dyno
