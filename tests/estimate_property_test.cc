// Property tests on the optimizer's cardinality estimation: with exact
// input statistics, the textbook estimator must land within a bounded
// factor of the true join cardinality across randomized PK-FK and skewed
// workloads — the accuracy contract DYNO relies on when it feeds measured
// leaf statistics into join enumeration (paper §1: the optimizer
// "estimates join result cardinalities using textbook techniques, however
// it operates on very accurate input cardinality estimates").

#include <map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "optimizer/optimizer.h"

namespace dyno {
namespace {

struct SyntheticRelation {
  std::string id;
  std::vector<int64_t> keys;  // values of its single join column
  std::string column;
};

TableStats ExactStats(const SyntheticRelation& relation) {
  TableStats stats;
  stats.cardinality = static_cast<double>(relation.keys.size());
  stats.avg_record_size = 32;
  std::unordered_set<int64_t> distinct(relation.keys.begin(),
                                       relation.keys.end());
  ColumnStats cs;
  cs.ndv = static_cast<double>(distinct.size());
  stats.columns[relation.column] = cs;
  return stats;
}

uint64_t TrueJoinSize(const SyntheticRelation& a,
                      const SyntheticRelation& b) {
  std::map<int64_t, uint64_t> counts;
  for (int64_t k : a.keys) ++counts[k];
  uint64_t total = 0;
  for (int64_t k : b.keys) {
    auto it = counts.find(k);
    if (it != counts.end()) total += it->second;
  }
  return total;
}

class JoinEstimateTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinEstimateTest, TwoWayEstimateWithinBoundedFactor) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  // Dimension with unique keys 0..n-1, fact with (possibly skewed) FKs.
  uint64_t dim_rows = 50 + rng.Uniform(500);
  uint64_t fact_rows = 500 + rng.Uniform(5000);
  double theta = rng.Bernoulli(0.5) ? 0.0 : rng.NextDouble() * 0.9;

  SyntheticRelation dim{"dim", {}, "k"};
  for (uint64_t i = 0; i < dim_rows; ++i) {
    dim.keys.push_back(static_cast<int64_t>(i));
  }
  SyntheticRelation fact{"fact", {}, "k"};
  for (uint64_t i = 0; i < fact_rows; ++i) {
    fact.keys.push_back(static_cast<int64_t>(rng.Zipf(dim_rows, theta)));
  }

  OptJoinGraph graph;
  graph.relations = {{"fact", ExactStats(fact)}, {"dim", ExactStats(dim)}};
  graph.edges = {{"fact", "k", "dim", "k"}};
  CostModelParams params;
  params.max_memory_bytes = 1 << 30;
  JoinOptimizer optimizer(params);
  auto result = optimizer.Optimize(graph);
  ASSERT_TRUE(result.ok());

  double actual = static_cast<double>(TrueJoinSize(fact, dim));
  double estimated = result->plan->est_rows;
  // PK-FK with exact NDVs: |fact ⋈ dim| = |fact| exactly (every fact key
  // hits). The estimator divides by max(ndv) which may under-count when
  // skew left some dimension keys unreferenced; allow a 3x band.
  EXPECT_GT(estimated, actual / 3.0) << "dim=" << dim_rows
                                     << " fact=" << fact_rows
                                     << " theta=" << theta;
  EXPECT_LT(estimated, actual * 3.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinEstimateTest,
                         ::testing::Range<uint64_t>(1, 16));

class ManyToManyEstimateTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ManyToManyEstimateTest, UniformManyToManyIsAccurate) {
  // Both sides draw uniformly from the same small domain: the textbook
  // formula |A||B|/max(ndv) is asymptotically exact here.
  uint64_t seed = GetParam();
  Rng rng(seed * 31 + 7);
  uint64_t domain = 10 + rng.Uniform(40);
  SyntheticRelation a{"a", {}, "k"};
  SyntheticRelation b{"b", {}, "k"};
  for (int i = 0; i < 3000; ++i) {
    a.keys.push_back(static_cast<int64_t>(rng.Uniform(domain)));
    b.keys.push_back(static_cast<int64_t>(rng.Uniform(domain)));
  }
  OptJoinGraph graph;
  graph.relations = {{"a", ExactStats(a)}, {"b", ExactStats(b)}};
  graph.edges = {{"a", "k", "b", "k"}};
  CostModelParams params;
  params.max_memory_bytes = 1 << 30;
  auto result = JoinOptimizer(params).Optimize(graph);
  ASSERT_TRUE(result.ok());
  double actual = static_cast<double>(TrueJoinSize(a, b));
  EXPECT_NEAR(result->plan->est_rows / actual, 1.0, 0.25)
      << "domain=" << domain;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ManyToManyEstimateTest,
                         ::testing::Range<uint64_t>(1, 11));

TEST(JoinEstimateTest, CompositeKeyBackoffBeatsNaiveMultiplication) {
  // Two edges between the same pair on correlated columns (a composite
  // key): naive per-edge multiplication underestimates by ~ndv2; the
  // backoff must land much closer.
  constexpr int kPairs = 300;  // (k1, k2) with k2 = k1 % 17 (correlated)
  // Build stats by hand: both relations have ndv(k1)=300, ndv(k2)=17.
  auto stats = [](double rows) {
    TableStats s;
    s.cardinality = rows;
    s.avg_record_size = 32;
    ColumnStats k1;
    k1.ndv = kPairs;
    ColumnStats k2;
    k2.ndv = 17;
    s.columns["k1"] = k1;
    s.columns["k2"] = k2;
    return s;
  };
  OptJoinGraph graph;
  graph.relations = {{"a", stats(3000)}, {"b", stats(300)}};
  graph.edges = {{"a", "k1", "b", "k1"}, {"a", "k2", "b", "k2"}};
  CostModelParams params;
  params.max_memory_bytes = 1 << 30;
  auto result = JoinOptimizer(params).Optimize(graph);
  ASSERT_TRUE(result.ok());
  // True size (FK into composite key): |a| = 3000. Naive estimation:
  // 3000*300/(300*17) = 176; backoff: 3000*300/(300*sqrt(17)) = 728.
  EXPECT_GT(result->plan->est_rows, 500)
      << "backoff must soften the composite-key underestimate";
  EXPECT_LT(result->plan->est_rows, 3000.1);
}

}  // namespace
}  // namespace dyno
