#include "dyno/driver.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "tpch/restaurant.h"

namespace dyno {
namespace {

class DriverTest : public ::testing::Test {
 protected:
  DriverTest() : catalog_(&dfs_), engine_(&dfs_, MakeConfig()) {
    TpchConfig config;
    config.scale = 0.0005;  // orders=750, lineitem~3000
    config.split_bytes = 8 * 1024;
    EXPECT_TRUE(GenerateTpch(&catalog_, config).ok());
  }

  static ClusterConfig MakeConfig() {
    ClusterConfig config;
    config.job_startup_ms = 2000;
    config.map_slots = 20;
    config.reduce_slots = 10;
    config.memory_per_task_bytes = 64 * 1024;
    return config;
  }

  DynoOptions MakeOptions() {
    DynoOptions options;
    options.pilot.k = 256;
    options.pilot.mode = PilotRunOptions::Mode::kParallel;
    options.cost.max_memory_bytes = MakeConfig().memory_per_task_bytes;
    options.cost.memory_factor = 1.5;
    return options;
  }

  void ExpectMatchesOracle(const Query& query, const QueryRunReport& report) {
    auto expected = NaiveEvaluateJoinBlock(&catalog_, query.join_block);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    ASSERT_NE(report.result, nullptr);
    std::vector<Value> actual = MustReadAll(*report.result);
    std::vector<Value> want = std::move(expected).value();
    SortRowsForComparison(&actual);
    SortRowsForComparison(&want);
    ASSERT_EQ(actual.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(actual[i].Compare(want[i]), 0)
          << "row " << i << ": " << actual[i].ToString() << " vs "
          << want[i].ToString();
    }
  }

  Dfs dfs_;
  Catalog catalog_;
  MapReduceEngine engine_;
  StatsStore store_;
};

TEST_F(DriverTest, Q10DynoptMatchesOracle) {
  DynoDriver driver(&engine_, &catalog_, &store_, MakeOptions());
  auto report = driver.Execute(MakeTpchQ10());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->jobs_run, 0);
  EXPECT_GE(report->optimizer_calls, 1);
  ExpectMatchesOracle(MakeTpchQ10(), *report);
}

TEST_F(DriverTest, Q2DynoptMatchesOracle) {
  DynoDriver driver(&engine_, &catalog_, &store_, MakeOptions());
  auto report = driver.Execute(MakeTpchQ2());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ExpectMatchesOracle(MakeTpchQ2(), *report);
}

TEST_F(DriverTest, Q8PrimeDynoptMatchesOracle) {
  DynoDriver driver(&engine_, &catalog_, &store_, MakeOptions());
  Query q8 = MakeTpchQ8Prime();
  auto report = driver.Execute(q8);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ExpectMatchesOracle(q8, *report);
  EXPECT_GE(report->optimizer_calls, 2) << "re-optimization expected";
}

TEST_F(DriverTest, Q9PrimeDynoptMatchesOracle) {
  DynoDriver driver(&engine_, &catalog_, &store_, MakeOptions());
  Query q9 = MakeTpchQ9Prime(/*dim_udf_selectivity=*/0.1);
  auto report = driver.Execute(q9);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ExpectMatchesOracle(q9, *report);
}

TEST_F(DriverTest, Q7DynoptMatchesOracle) {
  DynoDriver driver(&engine_, &catalog_, &store_, MakeOptions());
  Query q7 = MakeTpchQ7();
  auto report = driver.Execute(q7);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ExpectMatchesOracle(q7, *report);
}

TEST_F(DriverTest, SimpleVariantMatchesOracle) {
  DynoOptions options = MakeOptions();
  options.strategy = ExecutionStrategy::kSimpleParallel;
  DynoDriver driver(&engine_, &catalog_, &store_, options);
  auto report = driver.Execute(MakeTpchQ10());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->optimizer_calls, 1) << "SIMPLE never re-optimizes";
  ExpectMatchesOracle(MakeTpchQ10(), *report);
}

TEST_F(DriverTest, SerialSimpleMatchesParallelSimpleResults) {
  DynoOptions serial = MakeOptions();
  serial.strategy = ExecutionStrategy::kSimpleSerial;
  DynoDriver driver(&engine_, &catalog_, &store_, serial);
  auto report = driver.Execute(MakeTpchQ2());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ExpectMatchesOracle(MakeTpchQ2(), *report);
}

TEST_F(DriverTest, StrategiesAllProduceCorrectResults) {
  for (ExecutionStrategy strategy :
       {ExecutionStrategy::kUncertain2, ExecutionStrategy::kCheapest1,
        ExecutionStrategy::kCheapest2}) {
    DynoOptions options = MakeOptions();
    options.strategy = strategy;
    DynoDriver driver(&engine_, &catalog_, &store_, options);
    auto report = driver.Execute(MakeTpchQ8Prime());
    ASSERT_TRUE(report.ok()) << ExecutionStrategyName(strategy) << ": "
                             << report.status().ToString();
    ExpectMatchesOracle(MakeTpchQ8Prime(), *report);
  }
}

TEST_F(DriverTest, GroupByAndOrderByExecute) {
  Query q = MakeTpchQ10();
  GroupBySpec gb;
  gb.keys = {"n_name"};
  Aggregate count;
  count.kind = Aggregate::Kind::kCount;
  count.output_name = "cnt";
  Aggregate rev;
  rev.kind = Aggregate::Kind::kSum;
  rev.input_column = "l_extendedprice";
  rev.output_name = "revenue";
  gb.aggregates = {count, rev};
  q.group_by = gb;
  OrderBySpec ob;
  ob.keys = {{"revenue", /*desc=*/true}};
  ob.limit = 5;
  q.order_by = ob;

  DynoDriver driver(&engine_, &catalog_, &store_, MakeOptions());
  auto report = driver.Execute(q);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  std::vector<Value> rows = MustReadAll(*report->result);
  ASSERT_LE(rows.size(), 5u);
  ASSERT_GE(rows.size(), 1u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i - 1].FindField("revenue")->AsDouble(),
              rows[i].FindField("revenue")->AsDouble());
  }
}

TEST_F(DriverTest, RestaurantQueryMatchesOracle) {
  RestaurantConfig config;
  config.num_restaurants = 300;
  config.num_reviews = 1500;
  config.num_tweets = 2000;
  ASSERT_TRUE(GenerateRestaurantData(&catalog_, config).ok());
  Query q1 = MakeRestaurantQuery();
  DynoDriver driver(&engine_, &catalog_, &store_, MakeOptions());
  auto report = driver.Execute(q1);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ExpectMatchesOracle(q1, *report);
}

TEST_F(DriverTest, PlanHistoryRecorded) {
  DynoDriver driver(&engine_, &catalog_, &store_, MakeOptions());
  auto report = driver.Execute(MakeTpchQ8Prime());
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->plan_history.empty());
  for (const PlanEvent& event : report->plan_history) {
    EXPECT_FALSE(event.plan_compact.empty());
    EXPECT_FALSE(event.plan_tree.empty());
  }
}

TEST_F(DriverTest, PilotStatsReusedAcrossQueries) {
  DynoOptions options = MakeOptions();
  options.pilot.reuse_stats = true;
  DynoDriver driver(&engine_, &catalog_, &store_, options);
  ASSERT_TRUE(driver.Execute(MakeTpchQ10()).ok());
  size_t stats_after_first = store_.size();
  ASSERT_TRUE(driver.Execute(MakeTpchQ10()).ok());
  EXPECT_GT(store_.hits(), 0u) << "second run must reuse cached statistics";
  EXPECT_GE(store_.size(), stats_after_first);
}

}  // namespace
}  // namespace dyno
