// Unit tests of the multi-query service (DESIGN.md §6.6): admission-queue
// backpressure, per-tenant slot quotas, mid-flight cancellation, and the
// cross-query isolation the service depends on — two concurrent identical
// queries must not share temp paths, checkpoint manifests, catalog block
// registrations or engine fault streams.

#include "service/query_service.h"

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace dyno {
namespace {

class QueryServiceTest : public ::testing::Test {
 protected:
  QueryServiceTest() : catalog_(&dfs_), engine_(&dfs_, MakeConfig()) {
    TpchConfig config;
    config.scale = 0.0005;
    config.split_bytes = 8 * 1024;
    EXPECT_TRUE(GenerateTpch(&catalog_, config).ok());
  }

  static ClusterConfig MakeConfig() {
    ClusterConfig config;
    config.job_startup_ms = 2000;
    config.map_slots = 20;
    config.reduce_slots = 10;
    config.memory_per_task_bytes = 64 * 1024;
    config.faults.use_env_defaults = false;
    return config;
  }

  DynoOptions MakeOptions() {
    DynoOptions options;
    options.pilot.k = 256;
    options.pilot.mode = PilotRunOptions::Mode::kParallel;
    options.cost.max_memory_bytes = MakeConfig().memory_per_task_bytes;
    options.cost.memory_factor = 1.5;
    return options;
  }

  QuerySubmission MakeSubmission(const std::string& id, const Query& query,
                                 SimMillis arrival = 0) {
    QuerySubmission sub;
    sub.query_id = id;
    sub.query = query;
    sub.options = MakeOptions();
    sub.arrival_offset_ms = arrival;
    return sub;
  }

  void ExpectMatchesOracle(const Query& query, const QueryRunReport& report) {
    auto expected = NaiveEvaluateJoinBlock(&catalog_, query.join_block);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    ASSERT_NE(report.result, nullptr);
    std::vector<Value> actual = MustReadAll(*report.result);
    std::vector<Value> want = std::move(expected).value();
    SortRowsForComparison(&actual);
    SortRowsForComparison(&want);
    ASSERT_EQ(actual.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(actual[i].Compare(want[i]), 0) << "row " << i;
    }
  }

  Dfs dfs_;
  Catalog catalog_;
  MapReduceEngine engine_;
  StatsStore store_;
};

TEST_F(QueryServiceTest, TwoConcurrentIdenticalQueriesAreIsolated) {
  // The acid test for per-query scoping: the same query text twice, both
  // admitted at t=0, with a *shared* checkpoint-path template. Without
  // query-scoped temp paths / manifests the sessions would overwrite each
  // other's DFS artifacts.
  QueryServiceOptions opts;
  opts.max_concurrent = 2;
  // The `concurrency` ctest preset drives these knobs via DYNO_* env vars;
  // distinct tenants keep both sessions admissible under a 1-slot quota.
  opts.ApplyEnvOverrides();
  QueryService service(&engine_, &catalog_, &store_, opts);

  QuerySubmission a = MakeSubmission("qa", MakeTpchQ10());
  QuerySubmission b = MakeSubmission("qb", MakeTpchQ10());
  a.tenant = "ta";
  b.tenant = "tb";
  a.options.checkpoint_path = "/ckpt/svc";
  b.options.checkpoint_path = "/ckpt/svc";
  ASSERT_TRUE(service.Enqueue(a).ok());
  ASSERT_TRUE(service.Enqueue(b).ok());

  std::vector<QueryOutcome> outcomes = service.RunAll();
  ASSERT_EQ(outcomes.size(), 2u);
  for (const QueryOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.status.ok()) << outcome.query_id << ": "
                                     << outcome.status.ToString();
    EXPECT_EQ(outcome.admit_ms, outcomes[0].arrival_ms);
    EXPECT_GT(outcome.slot_ms, 0) << "slot accounting missing for "
                                  << outcome.query_id;
    ExpectMatchesOracle(MakeTpchQ10(), outcome.report);
  }
  // Interleaved execution genuinely happened: both were admitted together
  // and the checkpoint manifests landed in per-query namespaces.
  EXPECT_TRUE(dfs_.Exists("/ckpt/svc/q/qa"));
  EXPECT_TRUE(dfs_.Exists("/ckpt/svc/q/qb"));
  // Identical queries produce identical accounting (the fault model is off,
  // so their per-query fault streams cannot diverge them).
  EXPECT_EQ(outcomes[0].report.jobs_run, outcomes[1].report.jobs_run);
  EXPECT_EQ(outcomes[0].report.result_records,
            outcomes[1].report.result_records);
}

TEST_F(QueryServiceTest, AdmissionQueueOverflowIsBackpressure) {
  QueryServiceOptions opts;
  opts.max_concurrent = 1;
  opts.admission_queue_limit = 2;
  QueryService service(&engine_, &catalog_, &store_, opts);

  ASSERT_TRUE(service.Enqueue(MakeSubmission("q1", MakeTpchQ10())).ok());
  ASSERT_TRUE(service.Enqueue(MakeSubmission("q2", MakeTpchQ10())).ok());
  Status overflow = service.Enqueue(MakeSubmission("q3", MakeTpchQ10()));
  EXPECT_EQ(overflow.code(), StatusCode::kResourceExhausted)
      << overflow.ToString();

  std::vector<QueryOutcome> outcomes = service.RunAll();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].status.ok());
  EXPECT_TRUE(outcomes[1].status.ok());
  // max_concurrent=1 serializes them: q2 is admitted only after q1 is done.
  EXPECT_GE(outcomes[1].admit_ms, outcomes[0].finish_ms);
}

TEST_F(QueryServiceTest, RejectsEmptyAndDuplicateQueryIds) {
  QueryService service(&engine_, &catalog_, &store_, QueryServiceOptions());
  EXPECT_EQ(service.Enqueue(MakeSubmission("", MakeTpchQ10())).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(service.Enqueue(MakeSubmission("dup", MakeTpchQ10())).ok());
  EXPECT_EQ(service.Enqueue(MakeSubmission("dup", MakeTpchQ10())).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(QueryServiceTest, TenantQuotaDoesNotBlockOtherTenants) {
  QueryServiceOptions opts;
  opts.max_concurrent = 4;
  opts.tenant_slots = 1;
  QueryService service(&engine_, &catalog_, &store_, opts);

  QuerySubmission a1 = MakeSubmission("a1", MakeTpchQ10());
  QuerySubmission a2 = MakeSubmission("a2", MakeTpchQ10());
  QuerySubmission b1 = MakeSubmission("b1", MakeTpchQ10());
  a1.tenant = "a";
  a2.tenant = "a";
  b1.tenant = "b";
  ASSERT_TRUE(service.Enqueue(a1).ok());
  ASSERT_TRUE(service.Enqueue(a2).ok());
  ASSERT_TRUE(service.Enqueue(b1).ok());

  std::vector<QueryOutcome> outcomes = service.RunAll();
  ASSERT_EQ(outcomes.size(), 3u);
  for (const QueryOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.status.ok()) << outcome.query_id;
  }
  // a1 and b1 start together: b1 queued *behind* the quota-blocked a2 but
  // must not wait behind it. a2 waits for tenant a's slot.
  EXPECT_EQ(outcomes[2].admit_ms, outcomes[0].admit_ms);
  EXPECT_GE(outcomes[1].admit_ms, outcomes[0].finish_ms);
}

TEST_F(QueryServiceTest, CancelBeforeAdmissionNeverStarts) {
  QueryService service(&engine_, &catalog_, &store_, QueryServiceOptions());
  ASSERT_TRUE(service.Enqueue(MakeSubmission("gone", MakeTpchQ10())).ok());
  ASSERT_TRUE(service.Enqueue(MakeSubmission("kept", MakeTpchQ10())).ok());
  ASSERT_TRUE(service.Cancel("gone").ok());
  EXPECT_EQ(service.Cancel("nosuch").code(), StatusCode::kNotFound);

  std::vector<QueryOutcome> outcomes = service.RunAll();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].status.code(), StatusCode::kCancelled);
  EXPECT_EQ(outcomes[0].admit_ms, -1) << "cancelled query must not admit";
  ASSERT_TRUE(outcomes[1].status.ok());
  ExpectMatchesOracle(MakeTpchQ10(), outcomes[1].report);
}

TEST_F(QueryServiceTest, MidFlightCancellationStopsAtNextSubmission) {
  QueryServiceOptions opts;
  opts.max_concurrent = 2;
  opts.ApplyEnvOverrides();
  QueryService service(&engine_, &catalog_, &store_, opts);
  QuerySubmission victim = MakeSubmission("victim", MakeTpchQ10());
  QuerySubmission bystander = MakeSubmission("bystander", MakeTpchQ10());
  victim.tenant = "ta";
  bystander.tenant = "tb";
  ASSERT_TRUE(service.Enqueue(victim).ok());
  ASSERT_TRUE(service.Enqueue(bystander).ok());
  // Applied once the cluster clock passes 1 ms — i.e. after the first wave
  // of pilot jobs, squarely mid-query.
  ASSERT_TRUE(service.CancelAt("victim", 1).ok());

  std::vector<QueryOutcome> outcomes = service.RunAll();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].status.code(), StatusCode::kCancelled);
  EXPECT_GE(outcomes[0].admit_ms, 0) << "victim should have been admitted";
  EXPECT_GE(outcomes[0].finish_ms, outcomes[0].admit_ms);
  ASSERT_TRUE(outcomes[1].status.ok()) << outcomes[1].status.ToString();
  ExpectMatchesOracle(MakeTpchQ10(), outcomes[1].report);
}

TEST_F(QueryServiceTest, CancelIsIdempotent) {
  // Double-cancelling a queued query, cancelling an already-finished one,
  // and a timed cancel landing after the fact must all be OK no-ops — one
  // cancelled outcome, one finalization, no crash. NotFound stays reserved
  // for ids the service has never seen.
  QueryService service(&engine_, &catalog_, &store_, QueryServiceOptions());
  ASSERT_TRUE(service.Enqueue(MakeSubmission("gone", MakeTpchQ10())).ok());
  ASSERT_TRUE(service.Enqueue(MakeSubmission("kept", MakeTpchQ10())).ok());
  EXPECT_TRUE(service.Cancel("gone").ok());
  EXPECT_TRUE(service.Cancel("gone").ok()) << "double cancel must be a no-op";
  EXPECT_TRUE(service.CancelAt("gone", 10).ok());

  std::vector<QueryOutcome> outcomes = service.RunAll();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].status.code(), StatusCode::kCancelled);
  ASSERT_TRUE(outcomes[1].status.ok()) << outcomes[1].status.ToString();

  // After RunAll both sessions are finished; cancelling them again (in any
  // flavor) is an OK no-op, and unknown ids are still NotFound.
  EXPECT_TRUE(service.Cancel("kept").ok());
  EXPECT_TRUE(service.Cancel("kept").ok());
  EXPECT_TRUE(service.Cancel("gone").ok());
  EXPECT_TRUE(service.CancelAt("kept", 1).ok());
  EXPECT_EQ(service.Cancel("nosuch").code(), StatusCode::kNotFound);
  EXPECT_EQ(service.CancelAt("nosuch", 1).code(), StatusCode::kNotFound);
}

TEST_F(QueryServiceTest, ArrivalScheduleIsSeededAndDeterministic) {
  auto arrivals = [&](uint64_t seed) {
    QueryServiceOptions opts;
    opts.seed = seed;
    opts.arrival_window_ms = 10000;
    QueryService service(&engine_, &catalog_, &store_, opts);
    std::string out;
    for (int i = 0; i < 4; ++i) {
      QuerySubmission sub =
          MakeSubmission(StrFormat("q%d", i), MakeTpchQ10());
      sub.arrival_offset_ms = -1;  // draw from the service stream
      EXPECT_TRUE(service.Enqueue(sub).ok());
    }
    // Arrival offsets surface through outcomes; avoid running 4 queries by
    // cancelling everything first — cancelled-before-admission outcomes
    // still report their arrival times.
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(service.Cancel(StrFormat("q%d", i)).ok());
    }
    for (const QueryOutcome& outcome : service.RunAll()) {
      out += StrFormat("%lld,", (long long)outcome.arrival_ms);
    }
    return out;
  };
  std::string a = arrivals(7);
  EXPECT_EQ(a, arrivals(7));
  EXPECT_NE(a, arrivals(8));
}

TEST(QueryServiceOptionsTest, EnvOverridesParse) {
  auto saved = [](const char* name) -> std::string {
    const char* v = getenv(name);
    return v == nullptr ? std::string() : std::string(v);
  };
  std::string old_conc = saved("DYNO_CONCURRENCY");
  std::string old_slots = saved("DYNO_TENANT_SLOTS");
  std::string old_queue = saved("DYNO_ADMISSION_QUEUE");
  std::string old_preempt = saved("DYNO_PRIORITY_PREEMPTION");
  std::string old_deadline = saved("DYNO_QUERY_DEADLINE_MS");
  std::string old_shed_q = saved("DYNO_LOAD_SHED_QUEUE_MS");
  std::string old_shed_p = saved("DYNO_LOAD_SHED_PRESSURE");
  std::string old_shed_pri = saved("DYNO_LOAD_SHED_PRIORITY");
  setenv("DYNO_CONCURRENCY", "7", 1);
  setenv("DYNO_TENANT_SLOTS", "3", 1);
  setenv("DYNO_ADMISSION_QUEUE", "9", 1);
  setenv("DYNO_PRIORITY_PREEMPTION", "0", 1);
  setenv("DYNO_QUERY_DEADLINE_MS", "120000", 1);
  setenv("DYNO_LOAD_SHED_QUEUE_MS", "5500", 1);
  setenv("DYNO_LOAD_SHED_PRESSURE", "0.75", 1);
  setenv("DYNO_LOAD_SHED_PRIORITY", "2", 1);
  QueryServiceOptions options;
  options.ApplyEnvOverrides();
  EXPECT_EQ(options.max_concurrent, 7);
  EXPECT_EQ(options.tenant_slots, 3);
  EXPECT_EQ(options.admission_queue_limit, 9);
  EXPECT_FALSE(options.priority_preemption);
  EXPECT_EQ(options.default_deadline_ms, 120000);
  EXPECT_EQ(options.load_shed_queue_ms, 5500);
  EXPECT_DOUBLE_EQ(options.load_shed_pressure, 0.75);
  EXPECT_EQ(options.load_shed_max_priority, 2);
  auto restore = [](const char* name, const std::string& value) {
    if (value.empty()) {
      unsetenv(name);
    } else {
      setenv(name, value.c_str(), 1);
    }
  };
  restore("DYNO_CONCURRENCY", old_conc);
  restore("DYNO_TENANT_SLOTS", old_slots);
  restore("DYNO_ADMISSION_QUEUE", old_queue);
  restore("DYNO_PRIORITY_PREEMPTION", old_preempt);
  restore("DYNO_QUERY_DEADLINE_MS", old_deadline);
  restore("DYNO_LOAD_SHED_QUEUE_MS", old_shed_q);
  restore("DYNO_LOAD_SHED_PRESSURE", old_shed_p);
  restore("DYNO_LOAD_SHED_PRIORITY", old_shed_pri);
}

// Satellite regression for the engine audit: the per-job fault stream used
// to be seeded by job name alone, so two queries running an identically
// named job drew *the same* faults — correlated failures that do not exist
// on a real cluster. The stream is now salted with JobSpec::query_id.
TEST(QueryFaultStreamTest, IdenticalJobNamesDrawIndependentFaultStreams) {
  auto run = [](const std::string& query_id) {
    Dfs dfs;
    Catalog catalog(&dfs);
    ClusterConfig config;
    config.map_slots = 4;
    config.reduce_slots = 2;
    config.job_startup_ms = 500;
    config.faults.use_env_defaults = false;
    config.faults.seed = 42;
    config.faults.task_failure_rate = 0.35;
    config.faults.straggler_rate = 0.3;
    config.faults.straggler_slowdown = 6.0;
    config.faults.retry_backoff_ms = 200;
    MapReduceEngine engine(&dfs, config);

    std::vector<Value> rows;
    for (int i = 0; i < 4000; ++i) {
      rows.push_back(MakeRow({{"id", Value::Int(i)},
                              {"pad", Value::String(std::string(40, 'x'))}}));
    }
    EXPECT_TRUE(catalog.CreateTable("t", rows).ok());
    auto file = catalog.OpenTable("t");
    EXPECT_TRUE(file.ok());

    JobSpec spec;
    spec.name = "samename";  // deliberately identical across queries
    spec.query_id = query_id;
    spec.output_path = "/out/" + (query_id.empty() ? "legacy" : query_id);
    MapInput input;
    input.file = *file;
    input.map_fn = [](const Value& record, MapContext* ctx) -> Status {
      ctx->Output(record);
      return Status::OK();
    };
    spec.inputs = {std::move(input)};

    auto result = engine.Submit(spec);
    EXPECT_TRUE(result.ok());
    return StrFormat("inj=%d retry=%d spec=%d finish=%lld",
                     result->task_failures_injected, result->task_retries,
                     result->speculative_launches,
                     (long long)(result->finish_time_ms -
                                 result->submit_time_ms));
  };
  // Same query id → same stream (reproducibility preserved).
  EXPECT_EQ(run("qa"), run("qa"));
  // Different query ids → independent streams for the same job name.
  EXPECT_NE(run("qa"), run("qb"));
  // Empty id → the pre-service legacy stream, still stable.
  EXPECT_EQ(run(""), run(""));
}

}  // namespace
}  // namespace dyno
