#include <set>

#include <gtest/gtest.h>

#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "tpch/restaurant.h"

namespace dyno {
namespace {

class TpchGenTest : public ::testing::Test {
 protected:
  TpchGenTest() : catalog_(&dfs_) {
    TpchConfig config;
    config.scale = 0.001;
    EXPECT_TRUE(GenerateTpch(&catalog_, config).ok());
  }

  std::vector<Value> Rows(const std::string& table) {
    auto file = catalog_.OpenTable(table);
    EXPECT_TRUE(file.ok());
    return MustReadAll(**file);
  }

  Dfs dfs_;
  Catalog catalog_;
};

TEST_F(TpchGenTest, AllTablesRegistered) {
  for (const char* table :
       {"region", "nation", "nation1", "nation2", "supplier", "customer",
        "part", "partsupp", "orders", "lineitem"}) {
    EXPECT_TRUE(catalog_.Lookup(table).ok()) << table;
  }
}

TEST_F(TpchGenTest, SizesMatchScale) {
  TpchSizes sizes = ComputeTpchSizes(0.001);
  EXPECT_EQ(Rows("region").size(), sizes.region);
  EXPECT_EQ(Rows("nation").size(), sizes.nation);
  EXPECT_EQ(Rows("supplier").size(), sizes.supplier);
  EXPECT_EQ(Rows("customer").size(), sizes.customer);
  EXPECT_EQ(Rows("part").size(), sizes.part);
  EXPECT_EQ(Rows("partsupp").size(), sizes.partsupp);
  EXPECT_EQ(Rows("orders").size(), sizes.orders);
  // lineitem is 1..7 lines per order, expectation 4x.
  size_t lineitem = Rows("lineitem").size();
  EXPECT_GT(lineitem, 2 * sizes.orders);
  EXPECT_LT(lineitem, 7 * sizes.orders);
}

TEST_F(TpchGenTest, ForeignKeysResolve) {
  std::set<int64_t> nations;
  for (const Value& row : Rows("nation")) {
    nations.insert(row.FindField("n_nationkey")->int_value());
  }
  for (const Value& row : Rows("supplier")) {
    EXPECT_TRUE(nations.count(row.FindField("s_nationkey")->int_value()));
  }
  std::set<int64_t> customers;
  for (const Value& row : Rows("customer")) {
    customers.insert(row.FindField("c_custkey")->int_value());
  }
  for (const Value& row : Rows("orders")) {
    EXPECT_TRUE(customers.count(row.FindField("o_custkey")->int_value()));
  }
  std::set<int64_t> orders;
  for (const Value& row : Rows("orders")) {
    orders.insert(row.FindField("o_orderkey")->int_value());
  }
  for (const Value& row : Rows("lineitem")) {
    ASSERT_TRUE(orders.count(row.FindField("l_orderkey")->int_value()));
  }
}

TEST_F(TpchGenTest, LineitemSupplierConsistentWithPartsupp) {
  // Every (l_partkey, l_suppkey) pair must exist in partsupp, otherwise
  // Q9's ps⋈l join drops rows silently.
  std::set<std::pair<int64_t, int64_t>> ps;
  for (const Value& row : Rows("partsupp")) {
    ps.emplace(row.FindField("ps_partkey")->int_value(),
               row.FindField("ps_suppkey")->int_value());
  }
  for (const Value& row : Rows("lineitem")) {
    std::pair<int64_t, int64_t> key = {
        row.FindField("l_partkey")->int_value(),
        row.FindField("l_suppkey")->int_value()};
    ASSERT_TRUE(ps.count(key)) << key.first << "," << key.second;
  }
}

TEST_F(TpchGenTest, ChannelClerkGroupCorrelated) {
  int match = 0;
  int total = 0;
  std::map<std::string, int64_t> channel_index;
  for (int i = 0; i < kNumChannels; ++i) channel_index[kChannelNames[i]] = i;
  for (const Value& row : Rows("orders")) {
    ++total;
    if (channel_index[row.FindField("o_channel")->string_value()] ==
        row.FindField("o_clerk_group")->int_value()) {
      ++match;
    }
  }
  double fidelity = static_cast<double>(match) / total;
  EXPECT_GT(fidelity, 0.90) << "soft functional dependency expected";
  EXPECT_LT(fidelity, 1.0) << "dependency should be soft, not exact";
}

TEST_F(TpchGenTest, NestedAddressesPresent) {
  std::vector<Value> customers = Rows("customer");
  const Value& row = customers[0];
  const Value* addr = row.FindField("c_addr");
  ASSERT_NE(addr, nullptr);
  ASSERT_EQ(addr->type(), Value::Type::kArray);
  ASSERT_GE(addr->array().size(), 1u);
  EXPECT_NE(addr->array()[0].FindField("zip"), nullptr);
}

TEST_F(TpchGenTest, DeterministicForSameSeed) {
  Dfs dfs2;
  Catalog catalog2(&dfs2);
  TpchConfig config;
  config.scale = 0.001;
  ASSERT_TRUE(GenerateTpch(&catalog2, config).ok());
  auto a = catalog_.OpenTable("orders");
  auto b = catalog2.OpenTable("orders");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto rows_a = ReadAllRows(**a);
  auto rows_b = ReadAllRows(**b);
  ASSERT_TRUE(rows_a.ok());
  ASSERT_TRUE(rows_b.ok());
  ASSERT_EQ(rows_a->size(), rows_b->size());
  for (size_t i = 0; i < rows_a->size(); ++i) {
    ASSERT_EQ((*rows_a)[i].Compare((*rows_b)[i]), 0);
  }
}

TEST_F(TpchGenTest, QueriesValidateAgainstSchema) {
  for (const NamedQuery& nq : MakeAllPaperQueries()) {
    EXPECT_TRUE(ValidateJoinBlock(nq.query.join_block).ok()) << nq.name;
    EXPECT_TRUE(IsJoinGraphConnected(nq.query.join_block)) << nq.name;
    // Every referenced table must exist.
    for (const TableRef& ref : nq.query.join_block.tables) {
      EXPECT_TRUE(catalog_.Lookup(ref.table).ok())
          << nq.name << ": " << ref.table;
    }
  }
}

TEST(HashFilterUdfTest, SelectivityApproximatelyHonored) {
  ExprPtr udf = MakeHashFilterUdf("test_udf", {"id"}, 0.25, 10.0);
  int kept = 0;
  for (int i = 0; i < 20000; ++i) {
    Value row = MakeRow({{"id", Value::Int(i)}});
    auto v = udf->Eval(row);
    ASSERT_TRUE(v.ok());
    if (v->bool_value()) ++kept;
  }
  EXPECT_NEAR(kept / 20000.0, 0.25, 0.02);
}

TEST(HashFilterUdfTest, DeterministicAndSaltedByName) {
  ExprPtr a1 = MakeHashFilterUdf("alpha", {"id"}, 0.5, 1.0);
  ExprPtr a2 = MakeHashFilterUdf("alpha", {"id"}, 0.5, 1.0);
  ExprPtr b = MakeHashFilterUdf("beta", {"id"}, 0.5, 1.0);
  int differs = 0;
  for (int i = 0; i < 1000; ++i) {
    Value row = MakeRow({{"id", Value::Int(i)}});
    EXPECT_EQ(a1->Eval(row)->bool_value(), a2->Eval(row)->bool_value());
    if (a1->Eval(row)->bool_value() != b->Eval(row)->bool_value()) ++differs;
  }
  EXPECT_GT(differs, 100) << "different names must filter differently";
}

TEST(RestaurantTest, CorrelationZipImpliesState) {
  Dfs dfs;
  Catalog catalog(&dfs);
  RestaurantConfig config;
  config.num_restaurants = 1000;
  config.num_reviews = 100;
  config.num_tweets = 100;
  ASSERT_TRUE(GenerateRestaurantData(&catalog, config).ok());
  auto file = catalog.OpenTable("restaurant");
  ASSERT_TRUE(file.ok());
  auto rows = ReadAllRows(**file);
  ASSERT_TRUE(rows.ok());
  int palo_alto = 0;
  for (const Value& row : *rows) {
    const Value& primary = row.FindField("rs_addr")->array()[0];
    if (primary.FindField("zip")->int_value() == 94301) {
      ++palo_alto;
      EXPECT_EQ(primary.FindField("state")->string_value(), "CA")
          << "zip 94301 must imply CA";
    }
  }
  EXPECT_GT(palo_alto, 30);
}

}  // namespace
}  // namespace dyno
