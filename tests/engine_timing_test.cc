// Property tests on the cluster simulator's *timing* model: billed time
// must move in the physically sensible direction as data volume, slot
// counts, rates, side-data modes and container reuse change. (Functional
// correctness of the data flow is covered in mr_engine_test.cc.)

#include <gtest/gtest.h>

#include "mr/engine.h"
#include "storage/dfs.h"

namespace dyno {
namespace {

std::shared_ptr<DfsFile> MakeInput(Dfs* dfs, const std::string& path,
                                   int rows, uint64_t split_bytes = 512) {
  std::vector<Value> data;
  for (int i = 0; i < rows; ++i) {
    data.push_back(MakeRow({{"id", Value::Int(i)},
                            {"g", Value::Int(i % 7)},
                            {"pad", Value::String(std::string(40, 'x'))}}));
  }
  auto file = WriteRows(dfs, path, data, split_bytes);
  EXPECT_TRUE(file.ok());
  return *file;
}

MapFn CopyFn() {
  return [](const Value& record, MapContext* ctx) -> Status {
    ctx->Output(record);
    return Status::OK();
  };
}

JobSpec CopyJob(std::shared_ptr<DfsFile> input, const std::string& out) {
  JobSpec spec;
  spec.name = "copy";
  spec.output_path = out;
  spec.inputs = {{std::move(input), {}, CopyFn(), 1.0, {}}};
  return spec;
}

SimMillis RunAndTime(MapReduceEngine* engine, const JobSpec& spec) {
  auto result = engine->Submit(spec);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result->status.ok()) << result->status.ToString();
  return result->Elapsed();
}

TEST(EngineTimingTest, MoreDataTakesLonger) {
  Dfs dfs;
  ClusterConfig config;
  config.map_slots = 8;
  MapReduceEngine engine(&dfs, config);
  auto small = MakeInput(&dfs, "/small", 200);
  auto large = MakeInput(&dfs, "/large", 4000);
  SimMillis t_small = RunAndTime(&engine, CopyJob(small, "/o1"));
  SimMillis t_large = RunAndTime(&engine, CopyJob(large, "/o2"));
  EXPECT_GT(t_large, t_small);
}

TEST(EngineTimingTest, MoreSlotsNeverSlower) {
  Dfs dfs;
  auto input = MakeInput(&dfs, "/in", 4000);
  ClusterConfig few;
  few.map_slots = 2;
  ClusterConfig many = few;
  many.map_slots = 64;
  MapReduceEngine engine_few(&dfs, few);
  MapReduceEngine engine_many(&dfs, many);
  SimMillis t_few = RunAndTime(&engine_few, CopyJob(input, "/o1"));
  SimMillis t_many = RunAndTime(&engine_many, CopyJob(input, "/o2"));
  EXPECT_LE(t_many, t_few);
  EXPECT_LT(t_many, t_few) << "64x slots over many splits must help";
}

TEST(EngineTimingTest, SlowerReadRateCostsMore) {
  Dfs dfs;
  auto input = MakeInput(&dfs, "/in", 2000);
  ClusterConfig fast;
  fast.map_read_bytes_per_ms = 100.0;
  ClusterConfig slow = fast;
  slow.map_read_bytes_per_ms = 5.0;
  MapReduceEngine engine_fast(&dfs, fast);
  MapReduceEngine engine_slow(&dfs, slow);
  EXPECT_LT(RunAndTime(&engine_fast, CopyJob(input, "/o1")),
            RunAndTime(&engine_slow, CopyJob(input, "/o2")));
}

TEST(EngineTimingTest, WarmContainersSkipStartup) {
  Dfs dfs;
  ClusterConfig config;
  config.job_startup_ms = 20000;
  MapReduceEngine engine(&dfs, config);
  auto input = MakeInput(&dfs, "/in", 100);
  JobSpec cold = CopyJob(input, "/o_cold");
  SimMillis t_cold = RunAndTime(&engine, cold);
  JobSpec warm = CopyJob(input, "/o_warm");
  warm.reuse_warm_containers = true;
  SimMillis t_warm = RunAndTime(&engine, warm);
  EXPECT_GE(t_cold - t_warm, 20000 - 1000)
      << "warm submission must save (almost) the whole startup latency";
}

TEST(EngineTimingTest, SideDataBilledPerWaveInJaqlMode) {
  // Same job, bigger side data => slower, proportionally to waves.
  Dfs dfs;
  ClusterConfig config;
  config.map_slots = 4;  // many waves
  config.memory_per_task_bytes = 1 << 30;
  config.side_load_bytes_per_ms = 10.0;
  MapReduceEngine engine(&dfs, config);
  auto input = MakeInput(&dfs, "/in", 2000);

  JobSpec no_side = CopyJob(input, "/o0");
  SimMillis t0 = RunAndTime(&engine, no_side);
  JobSpec side = CopyJob(input, "/o1");
  side.side_load_bytes = 50 * 1024;
  side.side_memory_bytes = 50 * 1024;
  SimMillis t1 = RunAndTime(&engine, side);
  EXPECT_GT(t1, t0);

  // Hive mode (distributed cache): only the first wave per node pays.
  JobSpec hive = CopyJob(input, "/o2");
  hive.side_load_bytes = 50 * 1024;
  hive.side_memory_bytes = 50 * 1024;
  hive.side_data_via_distributed_cache = true;
  SimMillis t2 = RunAndTime(&engine, hive);
  EXPECT_LT(t2, t1) << "DistributedCache must amortize the build loads";
  EXPECT_GT(t2, t0);
}

TEST(EngineTimingTest, ShuffleBilledAtAggregateRate) {
  // A map-reduce job shipping N bytes through the shuffle must take at
  // least N / shuffle_rate longer than its map-only counterpart.
  Dfs dfs;
  ClusterConfig config;
  config.shuffle_bytes_per_ms = 10.0;
  MapReduceEngine engine(&dfs, config);
  auto input = MakeInput(&dfs, "/in", 3000);

  SimMillis t_map_only = RunAndTime(&engine, CopyJob(input, "/o1"));

  JobSpec shuffle_job;
  shuffle_job.name = "shuffle";
  shuffle_job.output_path = "/o2";
  shuffle_job.inputs = {{input, {}, [](const Value& r, MapContext* ctx) {
                           ctx->Emit(*r.FindField("g"), r);
                           return Status::OK();
                         }, 1.0, {}}};
  shuffle_job.reduce_fn = [](const Value&, const std::vector<Value>& values,
                             ReduceContext* ctx) -> Status {
    for (const Value& v : values) ctx->Output(v);
    return Status::OK();
  };
  auto result = engine.Submit(shuffle_job);
  ASSERT_TRUE(result.ok());
  SimMillis shuffle_floor = static_cast<SimMillis>(
      result->counters.map_output_bytes / 10.0);
  EXPECT_GT(result->Elapsed(), t_map_only + shuffle_floor / 2)
      << "shuffle bytes must dominate the gap";
}

TEST(EngineTimingTest, ClockAdvancesMonotonically) {
  Dfs dfs;
  MapReduceEngine engine(&dfs, ClusterConfig());
  auto input = MakeInput(&dfs, "/in", 50);
  SimMillis t0 = engine.now();
  RunAndTime(&engine, CopyJob(input, "/o1"));
  SimMillis t1 = engine.now();
  EXPECT_GT(t1, t0);
  engine.AdvanceClock(1234);
  EXPECT_EQ(engine.now(), t1 + 1234);
  RunAndTime(&engine, CopyJob(input, "/o2"));
  EXPECT_GT(engine.now(), t1 + 1234);
}

TEST(EngineTimingTest, ObserverCostScalesWithDeclaredCpu) {
  Dfs dfs;
  ClusterConfig config;
  config.cpu_units_per_ms = 10.0;
  MapReduceEngine engine(&dfs, config);
  auto input = MakeInput(&dfs, "/in", 1000);
  JobSpec cheap = CopyJob(input, "/o1");
  cheap.output_observer = [](const Value&) {};
  cheap.observer_cpu_per_record = 1.0;
  JobSpec pricey = CopyJob(input, "/o2");
  pricey.output_observer = [](const Value&) {};
  pricey.observer_cpu_per_record = 100.0;
  auto r1 = engine.Submit(cheap);
  auto r2 = engine.Submit(pricey);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r2->observer_overhead_ms, 10 * r1->observer_overhead_ms);
}

class ScaleSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ScaleSweepTest, ElapsedScalesSubLinearlyWithFreeSlots) {
  // With ample slots, doubling rows should not much more than double the
  // elapsed time (waves grow linearly; startup is constant).
  int rows = GetParam();
  Dfs dfs;
  ClusterConfig config;
  config.map_slots = 16;
  config.job_startup_ms = 1000;
  MapReduceEngine engine(&dfs, config);
  auto in1 = MakeInput(&dfs, "/a", rows);
  auto in2 = MakeInput(&dfs, "/b", 2 * rows);
  SimMillis t1 = RunAndTime(&engine, CopyJob(in1, "/o1"));
  SimMillis t2 = RunAndTime(&engine, CopyJob(in2, "/o2"));
  EXPECT_LE(t2, 3 * t1);
  EXPECT_GE(t2, t1);
}

INSTANTIATE_TEST_SUITE_P(Rows, ScaleSweepTest,
                         ::testing::Values(500, 2000, 8000));

}  // namespace
}  // namespace dyno
