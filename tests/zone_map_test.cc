// Pruning oracle for the per-split zone maps: every predicate shape the
// TPC-H workload uses (ranges, equalities, negation, OR, opaque UDFs) is
// checked against scripted split layouts with pinned prune counts, against
// a brute-force decode-and-evaluate oracle for soundness, and end to end —
// a pruned scan must produce byte-identical output to the unpruned
// row-path scan while provably skipping splits (scan.splits_pruned).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "columnar/knobs.h"
#include "columnar/zone_map.h"
#include "common/string_util.h"
#include "dyno/driver.h"
#include "exec/row_ops.h"
#include "expr/expr.h"
#include "mr/engine.h"
#include "obs/metrics.h"
#include "storage/catalog.h"
#include "test_util.h"
#include "tpch/queries.h"

namespace dyno {
namespace {

// ---------------------------------------------------------------------------
// ZoneMapBuilder unit behavior.

TEST(ZoneMapBuilderTest, TracksMinMaxAndNulls) {
  columnar::ZoneMapBuilder builder;
  builder.Observe(MakeRow({{"a", Value::Int(5)}, {"b", Value::String("x")}}));
  builder.Observe(MakeRow({{"a", Value::Int(-3)}, {"b", Value::Null()}}));
  builder.Observe(MakeRow({{"a", Value::Int(9)}}));  // b absent
  columnar::ZoneMap zm = builder.Build();
  ASSERT_TRUE(zm.trackable());
  EXPECT_EQ(zm.num_rows(), 3u);

  const columnar::ColumnZone* a = zm.FindColumn("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->min_value.int_value(), -3);
  EXPECT_EQ(a->max_value.int_value(), 9);
  EXPECT_EQ(a->non_null_rows, 3u);
  EXPECT_FALSE(a->has_null_or_absent);

  const columnar::ColumnZone* b = zm.FindColumn("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->non_null_rows, 1u);
  EXPECT_TRUE(b->has_null_or_absent);

  EXPECT_EQ(zm.FindColumn("nope"), nullptr);
}

TEST(ZoneMapBuilderTest, LateColumnIsMarkedAbsentInEarlierRows) {
  columnar::ZoneMapBuilder builder;
  builder.Observe(MakeRow({{"a", Value::Int(1)}}));
  builder.Observe(MakeRow({{"a", Value::Int(2)}, {"late", Value::Int(7)}}));
  columnar::ZoneMap zm = builder.Build();
  const columnar::ColumnZone* late = zm.FindColumn("late");
  ASSERT_NE(late, nullptr);
  EXPECT_TRUE(late->has_null_or_absent)
      << "row 1 evaluates `late` to null; the zone must say so";
}

TEST(ZoneMapBuilderTest, NonStructRowDisablesTracking) {
  columnar::ZoneMapBuilder builder;
  builder.Observe(MakeRow({{"a", Value::Int(1)}}));
  builder.Observe(Value::Int(42));
  columnar::ZoneMap zm = builder.Build();
  EXPECT_FALSE(zm.trackable());
  // Untrackable never prunes, whatever the filter.
  EXPECT_TRUE(columnar::ZoneMapMayMatch(zm, *Eq(Col("a"), LitInt(999))));
}

TEST(ZoneMapBuilderTest, TooManyColumnsDisablesTracking) {
  columnar::ZoneMapBuilder builder;
  StructFields fields;
  for (size_t i = 0; i < columnar::ZoneMap::kMaxColumns + 1; ++i) {
    fields.emplace_back(StrFormat("c%zu", i), Value::Int(1));
  }
  builder.Observe(Value::Struct(std::move(fields)));
  EXPECT_FALSE(builder.Build().trackable());
}

TEST(ZoneMapTest, EmptyZoneMapNeverPrunes) {
  columnar::ZoneMapBuilder builder;
  EXPECT_TRUE(
      columnar::ZoneMapMayMatch(builder.Build(), *Lt(Col("a"), LitInt(0))));
}

// ---------------------------------------------------------------------------
// Pinned prune counts on a scripted layout: 100 rows, ids 0..99, one row
// per split (target_split_bytes=1 seals after every append), so split i
// holds exactly {id=i} and every count below is exact by construction.

class PinnedLayoutTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<Value> rows;
    for (int i = 0; i < 100; ++i) {
      StructFields fields;
      fields.emplace_back("id", Value::Int(i));
      fields.emplace_back("name",
                          Value::String(i % 2 == 0 ? "EUROPE" : "ASIA"));
      if (i % 10 == 0) {
        fields.emplace_back("maybe", Value::Int(i));
      }
      rows.push_back(Value::Struct(std::move(fields)));
    }
    auto file = WriteRows(&dfs_, "/tables/pinned", rows,
                          /*target_split_bytes=*/1);
    ASSERT_TRUE(file.ok());
    file_ = *file;
    ASSERT_EQ(file_->splits().size(), 100u);
  }

  uint64_t Pruned(const ExprPtr& filter) {
    PruneResult result = PruneSplitIndexes(*file_, filter);
    EXPECT_EQ(result.kept.size() + result.pruned, file_->splits().size());
    return result.pruned;
  }

  Dfs dfs_;
  std::shared_ptr<DfsFile> file_;
};

TEST_F(PinnedLayoutTest, RangePredicates) {
  EXPECT_EQ(Pruned(Lt(Col("id"), LitInt(10))), 90u);
  EXPECT_EQ(Pruned(Le(Col("id"), LitInt(10))), 89u);
  EXPECT_EQ(Pruned(Gt(Col("id"), LitInt(89))), 90u);
  EXPECT_EQ(Pruned(Ge(Col("id"), LitInt(90))), 90u);
  // A selective quarter-window range: well over the 50% bar.
  EXPECT_EQ(Pruned(And(Ge(Col("id"), LitInt(20)), Lt(Col("id"), LitInt(30)))),
            90u);
}

TEST_F(PinnedLayoutTest, EqualityPredicates) {
  EXPECT_EQ(Pruned(Eq(Col("id"), LitInt(5))), 99u);
  EXPECT_EQ(Pruned(Eq(Col("id"), LitInt(-1))), 100u);
  EXPECT_EQ(Pruned(Eq(Col("name"), LitString("EUROPE"))), 50u);
  EXPECT_EQ(Pruned(Eq(Col("name"), LitString("AMERICA"))), 100u);
  // Ne prunes only the split whose single point equals the literal.
  EXPECT_EQ(Pruned(Ne(Col("id"), LitInt(5))), 1u);
}

TEST_F(PinnedLayoutTest, NegationPredicates) {
  EXPECT_EQ(Pruned(Not(Lt(Col("id"), LitInt(50)))), 50u);
  EXPECT_EQ(Pruned(Not(Eq(Col("id"), LitInt(5)))), 1u);
  // Double negation is the original predicate.
  EXPECT_EQ(Pruned(Not(Not(Lt(Col("id"), LitInt(10))))), 90u);
}

TEST_F(PinnedLayoutTest, DisjunctionPredicates) {
  EXPECT_EQ(Pruned(Or(Lt(Col("id"), LitInt(5)), Ge(Col("id"), LitInt(95)))),
            90u);
  EXPECT_EQ(Pruned(Or(Eq(Col("id"), LitInt(3)), Eq(Col("id"), LitInt(7)))),
            98u);
}

TEST_F(PinnedLayoutTest, ContradictionAndNullLiteralPruneEverything) {
  // `id < 5 AND id > 50` holds nowhere; an all-pruned scan is legal and
  // must read zero splits.
  EXPECT_EQ(Pruned(And(Lt(Col("id"), LitInt(5)), Gt(Col("id"), LitInt(50)))),
            100u);
  // Comparisons against a null literal are false on every row.
  EXPECT_EQ(Pruned(Eq(Col("id"), Lit(Value::Null()))), 100u);
}

TEST_F(PinnedLayoutTest, OpaqueUdfNeverPrunes) {
  // The paper's information asymmetry: a UDF's selectivity is invisible to
  // the optimizer AND to the zone map, so a UDF filter keeps every split
  // no matter how selective it actually is.
  ExprPtr udf = MakeHashFilterUdf("black_box", {"id"}, 0.01, 5.0);
  EXPECT_EQ(Pruned(udf), 0u);
  // A UDF under OR poisons the whole disjunction.
  EXPECT_EQ(Pruned(Or(Lt(Col("id"), LitInt(5)), udf)), 0u);
  // But a UDF in one AND-factor must not disable pruning from the others.
  EXPECT_EQ(Pruned(And(Lt(Col("id"), LitInt(10)), udf)), 90u);
  // NOT(udf) is just as opaque.
  EXPECT_EQ(Pruned(Not(udf)), 0u);
}

TEST_F(PinnedLayoutTest, OpaqueShapesNeverPrune) {
  // Arithmetic, nested paths and column-to-column comparisons are all
  // outside the zone map's simple-comparison language.
  EXPECT_EQ(Pruned(Gt(Arith(Expr::ArithOp::kAdd, Col("id"), LitInt(1)),
                      LitInt(1000))),
            0u);
  EXPECT_EQ(Pruned(Eq(Col("id"), Col("maybe"))), 0u);
}

TEST_F(PinnedLayoutTest, NullSemanticsUnderNegation) {
  // 90 splits have no "maybe" column, so `maybe >= 0` is false there —
  // prunable. Under negation the roles flip exactly: NOT(maybe >= 0) is
  // TRUE on the null rows (SQL-ish null semantics: the comparison is
  // false, NOT makes it true), so the 90 null splits must be KEPT — while
  // the 10 carrier splits, where `maybe >= 0` provably holds, are pruned.
  EXPECT_EQ(Pruned(Ge(Col("maybe"), LitInt(0))), 90u);
  EXPECT_EQ(Pruned(Not(Ge(Col("maybe"), LitInt(0)))), 10u);
  // Range on the present values still applies where the column exists:
  // "maybe" is 0,10,...,90, so > 40 keeps 5 of the 10 carriers.
  EXPECT_EQ(Pruned(Gt(Col("maybe"), LitInt(40))), 95u);
}

TEST_F(PinnedLayoutTest, NoFilterKeepsEverything) {
  PruneResult result = PruneSplitIndexes(*file_, nullptr);
  EXPECT_EQ(result.pruned, 0u);
  EXPECT_EQ(result.kept.size(), 100u);
}

// ---------------------------------------------------------------------------
// Soundness oracle on multi-row splits: for a bag of predicates covering
// every shape, a pruned split must contain NO row satisfying the filter
// (checked by decoding and evaluating row by row), in both formats.

TEST(ZoneMapOracleTest, PrunedSplitsContainNoMatchingRows) {
  for (SplitFormat format : {SplitFormat::kRow, SplitFormat::kColumnar}) {
    Dfs dfs;
    std::vector<Value> rows;
    for (int i = 0; i < 1200; ++i) {
      StructFields fields;
      fields.emplace_back("id", Value::Int(i));
      fields.emplace_back("k", Value::Int(i / 100));  // clustered blocks
      fields.emplace_back("tag", Value::String(i % 3 == 0 ? "hot" : "cold"));
      if (i % 7 == 0) fields.emplace_back("opt", Value::Null());
      rows.push_back(Value::Struct(std::move(fields)));
    }
    auto file = WriteRows(&dfs, "/tables/oracle", rows,
                          /*target_split_bytes=*/2048, format);
    ASSERT_TRUE(file.ok());
    ASSERT_GT((*file)->splits().size(), 4u);

    ExprPtr udf = MakeHashFilterUdf("u", {"id"}, 0.5, 2.0);
    std::vector<ExprPtr> filters = {
        Lt(Col("id"), LitInt(100)),
        And(Ge(Col("id"), LitInt(300)), Lt(Col("id"), LitInt(400))),
        Eq(Col("k"), LitInt(7)),
        Ne(Col("k"), LitInt(0)),
        Not(Lt(Col("id"), LitInt(600))),
        Or(Eq(Col("k"), LitInt(1)), Eq(Col("k"), LitInt(11))),
        Eq(Col("tag"), LitString("warm")),
        And(Lt(Col("id"), LitInt(200)), udf),
        Not(Ge(Col("opt"), LitInt(0))),
    };
    uint64_t total_pruned = 0;
    for (const ExprPtr& filter : filters) {
      PruneResult result = PruneSplitIndexes(**file, filter);
      total_pruned += result.pruned;
      std::vector<uint8_t> kept_mask((*file)->splits().size(), 0);
      for (size_t index : result.kept) kept_mask[index] = 1;
      for (size_t i = 0; i < (*file)->splits().size(); ++i) {
        if (kept_mask[i]) continue;
        auto split_rows = DecodeSplitRows((*file)->splits()[i]);
        ASSERT_TRUE(split_rows.ok());
        for (const Value& row : *split_rows) {
          auto keep = EvalFilter(filter, row);
          ASSERT_TRUE(keep.ok());
          EXPECT_FALSE(*keep) << "split " << i
                              << " was pruned but contains matching row "
                              << row.ToString();
        }
      }
    }
    // The sweep as a whole genuinely pruned (the clustered layout makes
    // the range/equality filters selective).
    EXPECT_GT(total_pruned, 0u);
  }
}

// ---------------------------------------------------------------------------
// End to end through the driver: a selective range scan with zone maps on
// must skip at least half the splits (scan.splits_pruned) and still return
// byte-identical output to the unpruned row-path scan.

struct ScanRun {
  std::string fingerprint;
  uint64_t splits_pruned = 0;
};

ScanRun RunEventScan(bool columnar, bool zone_maps) {
  ScopedEnv env({{"DYNO_COLUMNAR", columnar ? "1" : "0"},
                 {"DYNO_ZONE_MAPS", zone_maps ? "1" : "0"}});
  Dfs dfs;
  Catalog catalog(&dfs);
  ClusterConfig config;
  config.job_startup_ms = 500;
  config.map_slots = 8;
  config.reduce_slots = 4;
  config.faults.use_env_defaults = false;
  MapReduceEngine engine(&dfs, config);
  obs::MetricsRegistry metrics;
  engine.set_metrics(&metrics);

  // Timestamp-clustered event log: the natural zone-map-friendly layout.
  std::vector<Value> rows;
  for (int i = 0; i < 2000; ++i) {
    rows.push_back(MakeRow({{"ts", Value::Int(20260000 + i)},
                            {"ev", Value::Int(i % 17)},
                            {"pad", Value::String(std::string(30, 'e'))}}));
  }
  EXPECT_TRUE(catalog.CreateTable("events", rows, /*target_split_bytes=*/
                                  4 * 1024)
                  .ok());

  Query query;
  query.join_block.tables = {{"events", "e"}};
  // Quarter-window range: three quarters of the (clustered) splits can be
  // proven empty.
  query.join_block.predicates = {
      {And(Ge(Col("ts"), LitInt(20260500)), Lt(Col("ts"), LitInt(20261000))),
       {"e"}}};

  StatsStore store;
  DynoOptions options;
  options.pilot.k = 128;
  options.pilot.mode = PilotRunOptions::Mode::kParallel;
  DynoDriver driver(&engine, &catalog, &store, options);
  auto report = driver.Execute(query);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  ScanRun run;
  if (!report.ok()) {
    run.fingerprint = "error: " + report.status().ToString();
    return run;
  }
  uint64_t h = 14695981039346656037ull;
  for (const Split& split : report->result->splits()) {
    for (unsigned char c : split.data) {
      h ^= c;
      h *= 1099511628211ull;
    }
    run.fingerprint += StrFormat("s%llu ", (unsigned long long)
                                               split.num_records);
  }
  run.fingerprint += StrFormat("data=%llx records=%llu",
                               (unsigned long long)h,
                               (unsigned long long)report->result_records);
  run.splits_pruned = metrics.GetCounter("scan.splits_pruned")->value();
  return run;
}

TEST(ZoneMapScanTest, PrunedScanIsByteIdenticalAndSkipsMajority) {
  ScanRun row_unpruned = RunEventScan(/*columnar=*/false, /*zone_maps=*/false);
  ScanRun row_pruned = RunEventScan(/*columnar=*/false, /*zone_maps=*/true);
  ScanRun col_pruned = RunEventScan(/*columnar=*/true, /*zone_maps=*/true);

  // Baseline row path read everything.
  EXPECT_EQ(row_unpruned.splits_pruned, 0u);

  // Pruned runs return byte-identical output, whatever the format.
  EXPECT_EQ(row_pruned.fingerprint, row_unpruned.fingerprint)
      << "zone-map pruning changed the row-path scan output";
  EXPECT_EQ(col_pruned.fingerprint, row_unpruned.fingerprint)
      << "the columnar pruned scan diverged from the row-path oracle";

  // The quarter-window filter provably skips at least half the splits.
  // Both pruned runs see the same split boundaries, so the same count.
  EXPECT_GT(row_pruned.splits_pruned, 0u);
  EXPECT_EQ(row_pruned.splits_pruned, col_pruned.splits_pruned);

  // Recompute the pinned count straight from the layout: the metric must
  // agree exactly with PruneSplitIndexes on the same file and filter.
  ScopedEnv env({{"DYNO_COLUMNAR", "0"}, {"DYNO_ZONE_MAPS", "0"}});
  Dfs dfs;
  Catalog catalog(&dfs);
  std::vector<Value> rows;
  for (int i = 0; i < 2000; ++i) {
    rows.push_back(MakeRow({{"ts", Value::Int(20260000 + i)},
                            {"ev", Value::Int(i % 17)},
                            {"pad", Value::String(std::string(30, 'e'))}}));
  }
  ASSERT_TRUE(catalog.CreateTable("events", rows, 4 * 1024).ok());
  auto file = catalog.OpenTable("events");
  ASSERT_TRUE(file.ok());
  ExprPtr filter =
      And(Ge(Col("ts"), LitInt(20260500)), Lt(Col("ts"), LitInt(20261000)));
  PruneResult expected = PruneSplitIndexes(**file, filter);
  EXPECT_EQ(row_pruned.splits_pruned, expected.pruned);
  EXPECT_GE(expected.pruned * 2, (*file)->splits().size())
      << "the quarter-window scan must skip at least half the splits";
}

}  // namespace
}  // namespace dyno
