// Additional executor coverage: per-step statuses, build-side
// materialization, Hive-mode billing through the executor, unit-output
// registration, and DOT rendering.

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "exec/plan_executor.h"
#include "storage/dfs.h"

namespace dyno {
namespace {

class ExecExtraTest : public ::testing::Test {
 protected:
  ExecExtraTest() : engine_(&dfs_, MakeConfig()) {}

  static ClusterConfig MakeConfig() {
    ClusterConfig config;
    config.job_startup_ms = 1000;
    config.memory_per_task_bytes = 32 * 1024;
    config.map_slots = 4;  // several waves over the probe
    return config;
  }

  void BindTable(PlanExecutor* executor, const std::string& id, int rows,
                 int key_mod, ExprPtr filter = nullptr,
                 uint64_t split_bytes = 1024) {
    std::vector<Value> data;
    for (int i = 0; i < rows; ++i) {
      data.push_back(MakeRow({{id + "_id", Value::Int(i)},
                              {id + "_k", Value::Int(i % key_mod)},
                              {id + "_pad",
                               Value::String(std::string(30, 'p'))}}));
    }
    auto file = WriteRows(&dfs_, "/tables/" + id, data, split_bytes);
    ASSERT_TRUE(file.ok());
    RelationBinding binding;
    binding.file = *file;
    binding.scan_filter = filter;
    binding.scan_cpu_per_record = filter ? filter->CpuCost() : 0.0;
    executor->Bind(id, std::move(binding));
  }

  Dfs dfs_;
  MapReduceEngine engine_;
};

TEST_F(ExecExtraTest, ExecuteReportsPerStepStatusWithoutFailingSiblings) {
  PlanExecutor executor(&engine_, ExecOptions());
  BindTable(&executor, "a", 100, 10);
  BindTable(&executor, "big", 800, 10);  // way over 32K memory
  BindTable(&executor, "c", 40, 10);
  BindTable(&executor, "d", 8, 10);

  // Unit 1: an infeasible broadcast (build side too big). Unit 2: a fine
  // broadcast. One Execute call must return one failure and one success.
  auto bad = PlanNode::Join(JoinMethod::kBroadcast, PlanNode::Leaf("a"),
                            PlanNode::Leaf("big"), {{"a_k", "big_k"}});
  auto good = PlanNode::Join(JoinMethod::kBroadcast, PlanNode::Leaf("c"),
                             PlanNode::Leaf("d"), {{"c_k", "d_k"}});
  auto bad_units = PlanExecutor::Decompose(*bad);
  auto good_units = PlanExecutor::Decompose(*good);
  ASSERT_TRUE(bad_units.ok());
  ASSERT_TRUE(good_units.ok());

  PlanExecutor::UnitRequest bad_request;
  bad_request.unit = &(*bad_units)[0];
  PlanExecutor::UnitRequest good_request;
  good_request.unit = &(*good_units)[0];
  auto steps = executor.Execute({bad_request, good_request});
  ASSERT_TRUE(steps.ok()) << steps.status().ToString();
  ASSERT_EQ(steps->size(), 2u);
  EXPECT_EQ((*steps)[0].status.code(), StatusCode::kOutOfMemory);
  EXPECT_TRUE((*steps)[1].status.ok()) << (*steps)[1].status.ToString();
  // c keys 0..9 vs d keys 0..7: the 8 c-rows with keys 8/9 have no match.
  EXPECT_EQ((*steps)[1].job.counters.output_records, 32u);
}

TEST_F(ExecExtraTest, MaterializeFilteredLeafRebinds) {
  PlanExecutor executor(&engine_, ExecOptions());
  BindTable(&executor, "t", 500, 10, Lt(Col("t_id"), LitInt(50)));
  auto before = executor.GetBinding("t");
  ASSERT_TRUE(before.ok());
  ASSERT_NE(before->scan_filter, nullptr);
  uint64_t raw_bytes = before->file->num_bytes();

  ASSERT_TRUE(executor.MaterializeFilteredLeaf("t").ok());
  auto after = executor.GetBinding("t");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->scan_filter, nullptr);
  EXPECT_EQ(after->file->num_records(), 50u);
  EXPECT_LT(after->file->num_bytes(), raw_bytes);
  EXPECT_EQ(after->signature, before->signature);

  // Idempotent on an unfiltered binding.
  ASSERT_TRUE(executor.MaterializeFilteredLeaf("t").ok());
  auto again = executor.GetBinding("t");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->file->num_records(), 50u);
}

TEST_F(ExecExtraTest, SelectiveBuildIsAutoMaterializedDuringBroadcast) {
  // Probe spans many waves and the build's raw file dwarfs its filtered
  // size: the executor should insert a filter job and side-load the small
  // result. Observable through the rebinding of the build leaf.
  PlanExecutor executor(&engine_, ExecOptions());
  BindTable(&executor, "probe", 3000, 50, nullptr, /*split_bytes=*/512);
  BindTable(&executor, "build", 600, 50, Lt(Col("build_id"), LitInt(50)));

  auto plan = PlanNode::Join(JoinMethod::kBroadcast, PlanNode::Leaf("probe"),
                             PlanNode::Leaf("build"),
                             {{"probe_k", "build_k"}});
  auto units = PlanExecutor::Decompose(*plan);
  ASSERT_TRUE(units.ok());
  PlanExecutor::UnitRequest request;
  request.unit = &(*units)[0];
  auto step = executor.ExecuteOne(request);
  ASSERT_TRUE(step.ok()) << step.status().ToString();
  auto rebound = executor.GetBinding("build");
  ASSERT_TRUE(rebound.ok());
  EXPECT_EQ(rebound->scan_filter, nullptr)
      << "build leaf must have been materialized and rebound";
  EXPECT_EQ(rebound->file->num_records(), 50u);
  // Join result: 3000 probe rows x (50 build rows over 50 keys = 1 each).
  EXPECT_EQ(step->job.counters.output_records, 3000u);
}

TEST_F(ExecExtraTest, HiveModeIsFasterForBroadcastHeavyJobs) {
  auto run = [&](bool hive) -> SimMillis {
    ExecOptions options;
    options.hive_broadcast = hive;
    PlanExecutor executor(&engine_, options);
    BindTable(&executor, std::string("p") + (hive ? "h" : "j"), 3000, 20,
              nullptr, 512);
    BindTable(&executor, std::string("b") + (hive ? "h" : "j"), 250, 20);
    auto plan = PlanNode::Join(
        JoinMethod::kBroadcast,
        PlanNode::Leaf(std::string("p") + (hive ? "h" : "j")),
        PlanNode::Leaf(std::string("b") + (hive ? "h" : "j")),
        {{std::string("p") + (hive ? "h" : "j") + "_k",
          std::string("b") + (hive ? "h" : "j") + "_k"}});
    auto units = PlanExecutor::Decompose(*plan);
    EXPECT_TRUE(units.ok());
    PlanExecutor::UnitRequest request;
    request.unit = &(*units)[0];
    SimMillis start = engine_.now();
    auto step = executor.ExecuteOne(request);
    EXPECT_TRUE(step.ok()) << step.status().ToString();
    return engine_.now() - start;
  };
  SimMillis jaql = run(false);
  SimMillis hive = run(true);
  EXPECT_LT(hive, jaql)
      << "DistributedCache mode must amortize per-wave build loads";
}

TEST_F(ExecExtraTest, RegisterUnitOutputResolvesForDependants) {
  PlanExecutor executor(&engine_, ExecOptions());
  BindTable(&executor, "x", 20, 4);
  RelationBinding binding;
  binding.file = executor.GetBinding("x")->file;
  executor.Bind("substitute", std::move(binding));
  executor.RegisterUnitOutput(4242, "substitute");
  JobInput input;
  input.unit_uid = 4242;
  auto resolved = executor.ResolveInput(input);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, "substitute");
  JobInput missing;
  missing.unit_uid = 999999;
  EXPECT_FALSE(executor.ResolveInput(missing).ok());
}

TEST_F(ExecExtraTest, PlanToDotRendersAllNodes) {
  auto inner = PlanNode::Join(JoinMethod::kBroadcast, PlanNode::Leaf("a"),
                              PlanNode::Leaf("b"), {{"x", "y"}});
  inner->post_filter = Eq(Col("x"), LitInt(1));
  auto plan = PlanNode::Join(JoinMethod::kRepartition, std::move(inner),
                             PlanNode::Leaf("c"), {{"z", "z"}});
  std::string dot = plan->ToDot("myplan");
  EXPECT_NE(dot.find("digraph myplan"), std::string::npos);
  EXPECT_NE(dot.find("broadcast join"), std::string::npos);
  EXPECT_NE(dot.find("repartition join"), std::string::npos);
  EXPECT_NE(dot.find("+filter"), std::string::npos);
  EXPECT_NE(dot.find("probe"), std::string::npos);
  EXPECT_NE(dot.find("build"), std::string::npos);
  // 5 nodes -> ids n0..n4 present.
  for (int i = 0; i < 5; ++i) {
    EXPECT_NE(dot.find(StrFormat("n%d ", i)), std::string::npos) << i;
  }
}

}  // namespace
}  // namespace dyno
