#ifndef DYNO_TESTS_TEST_UTIL_H_
#define DYNO_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "exec/row_ops.h"
#include "lang/query.h"
#include "storage/catalog.h"

namespace dyno {

/// RAII environment pin: sets each variable for the scope and restores the
/// previous state (including absence) on destruction. The runtime knobs
/// (DYNO_COLUMNAR, DYNO_ZONE_MAPS, ...) are re-read on every use, so
/// pinning at test scope is deterministic regardless of the ctest preset's
/// environment.
class ScopedEnv {
 public:
  explicit ScopedEnv(std::vector<std::pair<std::string, std::string>> vars) {
    for (auto& [name, value] : vars) {
      const char* old = ::getenv(name.c_str());
      saved_.emplace_back(name, old == nullptr
                                    ? std::optional<std::string>()
                                    : std::optional<std::string>(old));
      ::setenv(name.c_str(), value.c_str(), 1);
    }
  }
  ~ScopedEnv() {
    for (auto it = saved_.rbegin(); it != saved_.rend(); ++it) {
      if (it->second.has_value()) {
        ::setenv(it->first.c_str(), it->second->c_str(), 1);
      } else {
        ::unsetenv(it->first.c_str());
      }
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::vector<std::pair<std::string, std::optional<std::string>>> saved_;
};

/// Brute-force oracle: evaluates a join block by nested-loop joins over
/// fully materialized tables. Only usable at test scale; results are
/// returned in no particular order.
Result<std::vector<Value>> NaiveEvaluateJoinBlock(Catalog* catalog,
                                                  const JoinBlock& block);

/// Recursively sorts struct fields by name: different join orders merge
/// the same logical row with different field orders, and struct comparison
/// is order-sensitive.
Value CanonicalizeFieldOrder(const Value& v);

/// Canonicalizes field order then sorts rows so result multisets compare.
void SortRowsForComparison(std::vector<Value>* rows);

/// Reads every row of a DFS file (fails the calling test on error).
std::vector<Value> MustReadAll(const DfsFile& file);

}  // namespace dyno

#endif  // DYNO_TESTS_TEST_UTIL_H_
