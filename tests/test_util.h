#ifndef DYNO_TESTS_TEST_UTIL_H_
#define DYNO_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/row_ops.h"
#include "lang/query.h"
#include "storage/catalog.h"

namespace dyno {

/// Brute-force oracle: evaluates a join block by nested-loop joins over
/// fully materialized tables. Only usable at test scale; results are
/// returned in no particular order.
Result<std::vector<Value>> NaiveEvaluateJoinBlock(Catalog* catalog,
                                                  const JoinBlock& block);

/// Recursively sorts struct fields by name: different join orders merge
/// the same logical row with different field orders, and struct comparison
/// is order-sensitive.
Value CanonicalizeFieldOrder(const Value& v);

/// Canonicalizes field order then sorts rows so result multisets compare.
void SortRowsForComparison(std::vector<Value>* rows);

/// Reads every row of a DFS file (fails the calling test on error).
std::vector<Value> MustReadAll(const DfsFile& file);

}  // namespace dyno

#endif  // DYNO_TESTS_TEST_UTIL_H_
