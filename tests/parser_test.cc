#include "lang/parser.h"

#include <gtest/gtest.h>

#include "tpch/queries.h"

namespace dyno {
namespace {

TEST(ParserTest, MinimalSelectStar) {
  auto q = ParseQuery("SELECT * FROM orders o");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->join_block.tables.size(), 1u);
  EXPECT_EQ(q->join_block.tables[0].table, "orders");
  EXPECT_EQ(q->join_block.tables[0].alias, "o");
  EXPECT_TRUE(q->join_block.output_columns.empty());
  EXPECT_FALSE(q->group_by.has_value());
}

TEST(ParserTest, DefaultAliasIsTableName) {
  auto q = ParseQuery("SELECT * FROM orders WHERE orders.o_custkey = 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->join_block.tables[0].alias, "orders");
  ASSERT_EQ(q->join_block.predicates.size(), 1u);
  EXPECT_EQ(q->join_block.predicates[0].aliases,
            std::vector<std::string>{"orders"});
}

TEST(ParserTest, JoinEdgesAndLocalPredicates) {
  auto q = ParseQuery(
      "SELECT c_name, o_totalprice FROM customer c, orders o "
      "WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 1000.5 "
      "AND c.c_mktsegment = 'BUILDING'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->join_block.edges.size(), 1u);
  EXPECT_EQ(q->join_block.edges[0].left_alias, "c");
  EXPECT_EQ(q->join_block.edges[0].left_column, "c_custkey");
  EXPECT_EQ(q->join_block.edges[0].right_alias, "o");
  ASSERT_EQ(q->join_block.predicates.size(), 2u);
  EXPECT_TRUE(q->join_block.predicates[0].IsLocal());
  EXPECT_EQ(q->join_block.predicates[0].aliases[0], "o");
  EXPECT_EQ(q->join_block.predicates[1].aliases[0], "c");
  EXPECT_EQ(q->join_block.output_columns,
            (std::vector<std::string>{"c_name", "o_totalprice"}));
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  auto q = ParseQuery(
      "select * from customer c, orders o where c.c_custkey = o.o_custkey");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->join_block.edges.size(), 1u);
}

TEST(ParserTest, NestedPathPredicate) {
  auto q = ParseQuery(
      "SELECT rs_name FROM restaurant rs WHERE rs.rs_addr[0].zip = 94301");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->join_block.predicates.size(), 1u);
  EXPECT_EQ(q->join_block.predicates[0].expr->ToString(),
            "(rs_addr[0].zip = 94301)");
}

TEST(ParserTest, CrossAliasNonEqualityStaysPredicate) {
  auto q = ParseQuery(
      "SELECT * FROM a x, b y WHERE x.k = y.k AND x.v < y.w");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->join_block.edges.size(), 1u);
  ASSERT_EQ(q->join_block.predicates.size(), 1u);
  EXPECT_EQ(q->join_block.predicates[0].aliases.size(), 2u)
      << "x.v < y.w is a non-local predicate, not a join edge";
}

TEST(ParserTest, UdfCallsResolveThroughRegistry) {
  UdfRegistry registry;
  registry["SENTANALYSIS"] = [](const std::vector<std::string>& cols) {
    return MakeHashFilterUdf("sentanalysis", cols, 0.3, 10.0);
  };
  registry["CHECKID"] = [](const std::vector<std::string>& cols) {
    return MakeHashFilterUdf("checkid", cols, 0.7, 10.0);
  };
  auto q = ParseQuery(
      "SELECT rs_name FROM restaurant rs, review rv, tweet t "
      "WHERE rs.rs_id = rv.rv_rsid AND rv.rv_tid = t.t_id "
      "AND sentanalysis(rv.rv_id) AND checkid(rv.rv_id, t.t_id)",
      registry);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->join_block.predicates.size(), 2u);
  EXPECT_TRUE(q->join_block.predicates[0].IsLocal());
  EXPECT_EQ(q->join_block.predicates[1].aliases.size(), 2u)
      << "checkid(rv, t) must be non-local";
}

TEST(ParserTest, UnknownUdfRejected) {
  auto q = ParseQuery("SELECT * FROM t WHERE mystery(t.x)");
  EXPECT_FALSE(q.ok());
}

TEST(ParserTest, GroupByWithAggregates) {
  auto q = ParseQuery(
      "SELECT n_name, COUNT(*) AS cnt, SUM(l_extendedprice) AS revenue, "
      "AVG(l_discount) AS avg_disc "
      "FROM lineitem l, nation n WHERE l.l_suppkey = n.n_nationkey "
      "GROUP BY n_name ORDER BY revenue DESC LIMIT 10");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->group_by.has_value());
  EXPECT_EQ(q->group_by->keys, std::vector<std::string>{"n_name"});
  ASSERT_EQ(q->group_by->aggregates.size(), 3u);
  EXPECT_EQ(q->group_by->aggregates[0].kind, Aggregate::Kind::kCount);
  EXPECT_EQ(q->group_by->aggregates[1].output_name, "revenue");
  ASSERT_TRUE(q->order_by.has_value());
  EXPECT_TRUE(q->order_by->keys[0].second) << "DESC";
  EXPECT_EQ(q->order_by->limit, 10);
  // Join output projected to grouping inputs.
  EXPECT_EQ(q->join_block.output_columns,
            (std::vector<std::string>{"l_discount", "l_extendedprice",
                                      "n_name"}));
}

TEST(ParserTest, AggregatesWithoutGroupByRejected) {
  auto q = ParseQuery("SELECT COUNT(*) AS n FROM t");
  EXPECT_FALSE(q.ok());
}

TEST(ParserTest, ErrorsCarryOffsets) {
  auto q = ParseQuery("SELECT * FROM t WHERE t.x ==");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("offset"), std::string::npos);

  EXPECT_FALSE(ParseQuery("SELECT").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t WHERE x = 1").ok())
      << "unqualified WHERE reference";
  EXPECT_FALSE(ParseQuery("SELECT * FROM t WHERE z.x = 1").ok())
      << "unknown alias";
  EXPECT_FALSE(ParseQuery("SELECT * FROM t LIMIT abc").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t WHERE t.s = 'unterminated").ok());
}

TEST(ParserTest, ParsedQ10EquivalentValidates) {
  // The paper's Q10 written as SQL parses into a valid 4-way join block.
  auto q = ParseQuery(
      "SELECT c_custkey, c_name, c_acctbal, n_name, l_extendedprice, "
      "l_discount "
      "FROM customer c, orders o, lineitem l, nation n "
      "WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey "
      "AND c.c_nationkey = n.n_nationkey "
      "AND o.o_orderdate >= 19931001 AND o.o_orderdate < 19940101 "
      "AND l.l_returnflag = 'R'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->join_block.tables.size(), 4u);
  EXPECT_EQ(q->join_block.edges.size(), 3u);
  EXPECT_TRUE(IsJoinGraphConnected(q->join_block));
  // Structure matches the hand-built Q10.
  Query reference = MakeTpchQ10();
  EXPECT_EQ(q->join_block.edges.size(), reference.join_block.edges.size());
  EXPECT_EQ(q->join_block.predicates.size() + 1,  // date range split in two
            reference.join_block.predicates.size() + 2);
}

}  // namespace
}  // namespace dyno
