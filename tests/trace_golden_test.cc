// Golden-trace regression harness. One canonical DYNOPT run — TPC-H Q10,
// a 3-join star over customer/orders/lineitem/nation, pilot runs plus
// re-optimization — is traced end to end and the serialized JSONL trace is
// diffed byte-for-byte against a checked-in golden, at 1, 4 and 8 engine
// execution threads, with fault injection off and on. Any change to event
// ordering, span timing, cost numbers or the schema shows up as an
// event-level diff naming the first divergent span.
//
// Regenerate the goldens after an intentional change with
//   DYNO_UPDATE_GOLDEN=1 ./trace_golden_test
// (they are written back into the source tree via DYNO_GOLDEN_DIR).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "dyno/driver.h"
#include "mr/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/stats_store.h"
#include "storage/catalog.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

#ifndef DYNO_GOLDEN_DIR
#error "DYNO_GOLDEN_DIR must point at the checked-in goldens directory"
#endif

namespace dyno {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(DYNO_GOLDEN_DIR) + "/" + name;
}

bool ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  out->clear();
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

bool WriteStringToFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  return std::fclose(f) == 0 && written == contents.size();
}

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find('\n', start);
    if (end == std::string::npos) {
      if (start < s.size()) lines.push_back(s.substr(start));
      break;
    }
    lines.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

/// "name" field of one serialized event line, or "<no name>".
std::string EventName(const std::string& line) {
  const char kKey[] = "\"name\":\"";
  size_t pos = line.find(kKey);
  if (pos == std::string::npos) return "<no name>";
  pos += sizeof(kKey) - 1;
  size_t end = line.find('"', pos);
  if (end == std::string::npos) return "<no name>";
  return line.substr(pos, end - pos);
}

/// Event-level diff: names the first span where two serialized traces
/// disagree, with both renderings. Empty string when identical.
std::string DescribeFirstDivergence(const std::string& golden,
                                    const std::string& actual) {
  if (golden == actual) return "";
  std::vector<std::string> want = SplitLines(golden);
  std::vector<std::string> got = SplitLines(actual);
  size_t n = std::min(want.size(), got.size());
  for (size_t i = 0; i < n; ++i) {
    if (want[i] == got[i]) continue;
    return StrFormat(
        "first divergent span at line %zu: event \"%s\"\n  golden: %s\n  "
        "actual: %s",
        i, EventName(got[i] != "" ? got[i] : want[i]).c_str(),
        want[i].c_str(), got[i].c_str());
  }
  // One trace is a strict prefix of the other.
  const std::vector<std::string>& longer = want.size() > n ? want : got;
  return StrFormat("traces diverge at line %zu: %s has extra event \"%s\": %s",
                   n, want.size() > n ? "golden" : "actual",
                   EventName(longer[n]).c_str(), longer[n].c_str());
}

struct TracedRun {
  std::string trace_jsonl;
  std::string metrics_text;
  QueryRunReport report;
};

/// Builds a fresh cluster + TPC-H catalog, executes Q10 through the full
/// DYNOPT pipeline with a trace sink and metrics registry attached, and
/// returns every serialized observation. `c_probe_scale` perturbs the cost
/// model's broadcast probe constant (used to prove the harness catches
/// cost-model drift).
TracedRun RunCanonicalQuery(int threads, bool faults,
                            double c_probe_scale = 1.0,
                            bool corruption = false) {
  TracedRun out;
  Dfs dfs;
  Catalog catalog(&dfs);
  ClusterConfig config;
  config.job_startup_ms = 2000;
  config.map_slots = 20;
  config.reduce_slots = 10;
  config.memory_per_task_bytes = 64 * 1024;
  config.execution_threads = threads;
  // Pin the fault model so the ctest `faults` preset's env vars cannot
  // perturb the golden comparison.
  config.faults.use_env_defaults = false;
  if (faults) {
    config.faults.seed = 42;
    config.faults.task_failure_rate = 0.08;
    config.faults.straggler_rate = 0.10;
    config.faults.straggler_slowdown = 4.0;
    config.faults.speculative_slowness_threshold = 1.5;
    config.faults.retry_backoff_ms = 200;
  }
  if (corruption) {
    // A corruption-heavy regime: plenty of healed replica re-reads and
    // shuffle re-fetches, a sprinkle of quarantined poison records, but
    // rates low enough that the query still succeeds (all replicas corrupt
    // at 0.05^3 per read is vanishingly rare at this scale).
    config.faults.seed = 42;
    config.faults.block_corruption_rate = 0.05;
    config.faults.shuffle_corruption_rate = 0.4;
    config.faults.poison_record_rate = 0.001;
    config.faults.retry_backoff_ms = 200;
  }
  MapReduceEngine engine(&dfs, config);

  TpchConfig tpch;
  tpch.scale = 0.0005;
  tpch.split_bytes = 8 * 1024;
  EXPECT_TRUE(GenerateTpch(&catalog, tpch).ok());

  obs::TraceSink trace;
  obs::MetricsRegistry metrics;
  engine.set_trace(&trace);
  engine.set_metrics(&metrics);

  StatsStore store;
  DynoOptions options;
  options.pilot.k = 256;
  options.pilot.mode = PilotRunOptions::Mode::kParallel;
  options.pilot.reuse_stats = false;
  options.cost.max_memory_bytes = config.memory_per_task_bytes;
  options.cost.memory_factor = 1.5;
  options.cost.c_probe *= c_probe_scale;
  // At this tiny scale every build side fits in memory, so Q10 plans as
  // pure map-only broadcast chains — which would leave the corruption
  // regime no shuffle to corrupt. Force repartition joins there so the
  // golden pins the shuffle-checksum path too.
  if (corruption) options.cost.enable_broadcast = false;
  DynoDriver driver(&engine, &catalog, &store, options);
  auto report = driver.Execute(MakeTpchQ10());
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (report.ok()) out.report = std::move(*report);
  out.trace_jsonl = trace.SerializeJsonl();
  out.metrics_text = metrics.Serialize();
  return out;
}

/// Compares `actual` against the golden file, or rewrites the golden when
/// DYNO_UPDATE_GOLDEN is set.
void CompareWithGolden(const std::string& golden_name,
                       const std::string& actual) {
  std::string path = GoldenPath(golden_name);
  if (std::getenv("DYNO_UPDATE_GOLDEN") != nullptr) {
    ASSERT_TRUE(WriteStringToFile(path, actual))
        << "cannot write golden " << path;
    std::fprintf(stderr, "updated golden %s (%zu bytes)\n", path.c_str(),
                 actual.size());
    return;
  }
  std::string expected;
  ASSERT_TRUE(ReadFileToString(path, &expected))
      << "missing golden " << path
      << " — regenerate with DYNO_UPDATE_GOLDEN=1";
  EXPECT_TRUE(expected == actual) << DescribeFirstDivergence(expected, actual);
}

TEST(TraceGoldenTest, CleanTraceBitIdenticalAcrossThreadsAndMatchesGolden) {
  TracedRun one = RunCanonicalQuery(1, /*faults=*/false);
  TracedRun four = RunCanonicalQuery(4, /*faults=*/false);
  TracedRun eight = RunCanonicalQuery(8, /*faults=*/false);
  EXPECT_TRUE(one.trace_jsonl == four.trace_jsonl)
      << DescribeFirstDivergence(one.trace_jsonl, four.trace_jsonl);
  EXPECT_TRUE(one.trace_jsonl == eight.trace_jsonl)
      << DescribeFirstDivergence(one.trace_jsonl, eight.trace_jsonl);
  EXPECT_EQ(one.metrics_text, four.metrics_text);
  EXPECT_EQ(one.metrics_text, eight.metrics_text);
  CompareWithGolden("q10_clean.jsonl", one.trace_jsonl);
}

TEST(TraceGoldenTest, FaultyTraceBitIdenticalAcrossThreadsAndMatchesGolden) {
  TracedRun one = RunCanonicalQuery(1, /*faults=*/true);
  TracedRun four = RunCanonicalQuery(4, /*faults=*/true);
  TracedRun eight = RunCanonicalQuery(8, /*faults=*/true);
  EXPECT_TRUE(one.trace_jsonl == four.trace_jsonl)
      << DescribeFirstDivergence(one.trace_jsonl, four.trace_jsonl);
  EXPECT_TRUE(one.trace_jsonl == eight.trace_jsonl)
      << DescribeFirstDivergence(one.trace_jsonl, eight.trace_jsonl);
  EXPECT_EQ(one.metrics_text, four.metrics_text);
  // The golden is only interesting if the fault path genuinely fired.
  EXPECT_GT(one.report.task_failures_injected, 0);
  EXPECT_GT(one.report.task_retries, 0);
  CompareWithGolden("q10_faults.jsonl", one.trace_jsonl);
}

TEST(TraceGoldenTest,
     CorruptionTraceBitIdenticalAcrossThreadsAndMatchesGolden) {
  TracedRun one =
      RunCanonicalQuery(1, /*faults=*/false, 1.0, /*corruption=*/true);
  TracedRun four =
      RunCanonicalQuery(4, /*faults=*/false, 1.0, /*corruption=*/true);
  TracedRun eight =
      RunCanonicalQuery(8, /*faults=*/false, 1.0, /*corruption=*/true);
  EXPECT_TRUE(one.trace_jsonl == four.trace_jsonl)
      << DescribeFirstDivergence(one.trace_jsonl, four.trace_jsonl);
  EXPECT_TRUE(one.trace_jsonl == eight.trace_jsonl)
      << DescribeFirstDivergence(one.trace_jsonl, eight.trace_jsonl);
  EXPECT_EQ(one.metrics_text, four.metrics_text);
  EXPECT_EQ(one.metrics_text, eight.metrics_text);
  // The golden is only interesting if every integrity path genuinely fired
  // (this also guarantees scripts/check_goldens.sh can grep the events).
  EXPECT_GT(one.report.block_corruptions, 0);
  EXPECT_GT(one.report.checksum_refetches, 0);
  EXPECT_GT(one.report.records_quarantined, 0u);
  for (const char* name :
       {"\"name\":\"block_corruption\"", "\"name\":\"shuffle_checksum_retry\"",
        "\"name\":\"record_quarantined\""}) {
    EXPECT_NE(one.trace_jsonl.find(name), std::string::npos) << name;
  }
  CompareWithGolden("q10_corruption.jsonl", one.trace_jsonl);
}

TEST(TraceGoldenTest, TraceCoversTheWholeQueryLifecycle) {
  TracedRun run = RunCanonicalQuery(1, /*faults=*/false);
  for (const char* name :
       {"\"name\":\"pilot_leaf\"", "\"name\":\"pilot_batch\"",
        "\"name\":\"optimize\"", "\"name\":\"job_submit\"",
        "\"name\":\"job\"", "\"name\":\"map_phase\"",
        "\"name\":\"map_attempt\"", "\"name\":\"final_step\""}) {
    EXPECT_NE(run.trace_jsonl.find(name), std::string::npos) << name;
  }
  // Metrics registered by engine, pilot and driver all show up.
  for (const char* metric :
       {"counter mr.jobs", "counter pilot.runs_executed",
        "counter driver.optimizer_calls", "histogram mr.job_ms"}) {
    EXPECT_NE(run.metrics_text.find(metric), std::string::npos) << metric;
  }
}

TEST(TraceGoldenTest, CostModelPerturbationNamesFirstDivergentSpan) {
  // A deliberate one-line cost-model change (c_probe scaled 1.3x — part of
  // every broadcast join's cost, so the winner's cost must move) must fail
  // the golden comparison with a diff that names the optimizer span where
  // the costs first diverge — not merely "files differ".
  TracedRun baseline = RunCanonicalQuery(1, /*faults=*/false);
  TracedRun perturbed =
      RunCanonicalQuery(1, /*faults=*/false, /*c_probe_scale=*/1.3);
  ASSERT_NE(baseline.trace_jsonl, perturbed.trace_jsonl)
      << "perturbing c_probe must alter traced optimizer costs";
  std::string diff =
      DescribeFirstDivergence(baseline.trace_jsonl, perturbed.trace_jsonl);
  ASSERT_FALSE(diff.empty());
  EXPECT_NE(diff.find("first divergent span"), std::string::npos) << diff;
  EXPECT_NE(diff.find("\"optimize\""), std::string::npos)
      << "expected the optimize span to diverge first, got:\n" << diff;
}

TEST(TraceGoldenTest, GoldenHeadersCarryCurrentSchemaVersion) {
  // scripts/check_goldens.sh enforces the same invariant without a build;
  // this is the in-process version so `ctest` alone catches drift.
  if (std::getenv("DYNO_UPDATE_GOLDEN") != nullptr) GTEST_SKIP();
  std::string expected_header = StrFormat(
      "{\"schema\":%d,\"clock\":\"sim_ms\"}", obs::kTraceSchemaVersion);
  for (const char* name :
       {"q10_clean.jsonl", "q10_faults.jsonl", "q10_corruption.jsonl"}) {
    std::string contents;
    ASSERT_TRUE(ReadFileToString(GoldenPath(name), &contents)) << name;
    std::vector<std::string> lines = SplitLines(contents);
    ASSERT_FALSE(lines.empty()) << name;
    EXPECT_EQ(lines[0], expected_header) << name;
  }
}

}  // namespace
}  // namespace dyno
