// Additional driver-level coverage: Hive-backend correctness, static-plan
// serial/parallel equivalence, the no-pilot ablation, left-deep-only mode,
// and single-table blocks.

#include <gtest/gtest.h>

#include "baselines/best_static.h"
#include "dyno/driver.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace dyno {
namespace {

class DriverExtraTest : public ::testing::Test {
 protected:
  DriverExtraTest() : catalog_(&dfs_), engine_(&dfs_, MakeConfig()) {
    TpchConfig config;
    config.scale = 0.0005;
    config.split_bytes = 8 * 1024;
    EXPECT_TRUE(GenerateTpch(&catalog_, config).ok());
  }

  static ClusterConfig MakeConfig() {
    ClusterConfig config;
    config.job_startup_ms = 2000;
    config.memory_per_task_bytes = 64 * 1024;
    return config;
  }

  DynoOptions MakeOptions() {
    DynoOptions options;
    options.pilot.k = 256;
    options.cost.max_memory_bytes = MakeConfig().memory_per_task_bytes;
    return options;
  }

  void ExpectOracleMatch(const Query& query, const QueryRunReport& report) {
    auto oracle = NaiveEvaluateJoinBlock(&catalog_, query.join_block);
    ASSERT_TRUE(oracle.ok());
    std::vector<Value> actual = MustReadAll(*report.result);
    std::vector<Value> want = std::move(oracle).value();
    SortRowsForComparison(&actual);
    SortRowsForComparison(&want);
    ASSERT_EQ(actual.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(actual[i].Compare(want[i]), 0);
    }
  }

  Dfs dfs_;
  Catalog catalog_;
  MapReduceEngine engine_;
  StatsStore store_;
};

TEST_F(DriverExtraTest, HiveBackendProducesSameResults) {
  Query q9 = MakeTpchQ9Prime(/*dim_udf_selectivity=*/0.1);
  DynoOptions jaql = MakeOptions();
  DynoOptions hive = MakeOptions();
  hive.exec.hive_broadcast = true;
  StatsStore store2;
  DynoDriver jaql_driver(&engine_, &catalog_, &store_, jaql);
  DynoDriver hive_driver(&engine_, &catalog_, &store2, hive);
  auto jaql_report = jaql_driver.Execute(q9);
  auto hive_report = hive_driver.Execute(q9);
  ASSERT_TRUE(jaql_report.ok()) << jaql_report.status().ToString();
  ASSERT_TRUE(hive_report.ok()) << hive_report.status().ToString();
  EXPECT_EQ(jaql_report->result_records, hive_report->result_records);
  ExpectOracleMatch(q9, *hive_report);
}

TEST_F(DriverExtraTest, StaticSerialAndParallelProduceIdenticalRows) {
  // RunStaticPlan's SO and MO paths must differ only in schedule.
  Query q2 = MakeTpchQ2();
  BestStaticOptions options;
  options.cost = MakeOptions().cost;
  BestStaticBaseline baseline(&engine_, &catalog_, options);
  auto plan = baseline.BuildJaqlPlan(q2.join_block,
                                     {"p", "ps", "s", "n", "r"});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  auto run = [&](bool parallel) -> std::vector<Value> {
    PlanExecutor executor(&engine_, ExecOptions());
    std::vector<LeafExpr> leaves =
        ExtractLeafExprs(q2.join_block, nullptr);
    for (const LeafExpr& leaf : leaves) {
      auto file = catalog_.OpenTable(leaf.table);
      EXPECT_TRUE(file.ok());
      RelationBinding binding;
      binding.file = *file;
      binding.scan_filter = leaf.filter;
      executor.Bind(leaf.alias, std::move(binding));
    }
    auto result = RunStaticPlan(&executor, **plan, parallel,
                                q2.join_block.output_columns);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return MustReadAll(*result->output);
  };
  std::vector<Value> serial = run(false);
  std::vector<Value> parallel = run(true);
  SortRowsForComparison(&serial);
  SortRowsForComparison(&parallel);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].Compare(parallel[i]), 0);
  }
}

TEST_F(DriverExtraTest, NoPilotAblationStillCorrect) {
  DynoOptions options = MakeOptions();
  options.use_pilot_runs = false;
  DynoDriver driver(&engine_, &catalog_, &store_, options);
  Query q10 = MakeTpchQ10();
  auto report = driver.Execute(q10);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->pilot_ms, 0);
  ExpectOracleMatch(q10, *report);
}

TEST_F(DriverExtraTest, LeftDeepOnlyModeCorrectAndShapeRestricted) {
  DynoOptions options = MakeOptions();
  options.cost.left_deep_only = true;
  DynoDriver driver(&engine_, &catalog_, &store_, options);
  Query q2 = MakeTpchQ2();
  auto report = driver.Execute(q2);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ExpectOracleMatch(q2, *report);
  // Every recorded plan must be left-deep: no '(' directly after an
  // opening join's right operand — verify via the compact rendering shape:
  // a right child that is a join renders as "... *x ("; left-deep plans
  // never contain " (" after the operator.
  for (const PlanEvent& event : report->plan_history) {
    EXPECT_EQ(event.plan_compact.find("b ("), std::string::npos)
        << event.plan_compact;
    EXPECT_EQ(event.plan_compact.find("r ("), std::string::npos)
        << event.plan_compact;
  }
}

TEST_F(DriverExtraTest, SingleTableBlockRunsAsScanJob) {
  Query query;
  query.join_block.tables = {{"orders", "o"}};
  query.join_block.predicates = {
      {Eq(Col("o_channel"), LitString("web")), {"o"}}};
  query.join_block.output_columns = {"o_orderkey", "o_totalprice"};
  DynoDriver driver(&engine_, &catalog_, &store_, MakeOptions());
  auto report = driver.Execute(query);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->jobs_run, 1);
  EXPECT_EQ(report->map_only_jobs, 1);
  ExpectOracleMatch(query, *report);
  // Rows carry only the projected columns.
  std::vector<Value> rows = MustReadAll(*report->result);
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0].fields().size(), 2u);
}

TEST_F(DriverExtraTest, ReportAccountingIsConsistent) {
  DynoDriver driver(&engine_, &catalog_, &store_, MakeOptions());
  auto report = driver.Execute(MakeTpchQ8Prime());
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->total_ms, 0);
  EXPECT_GE(report->total_ms,
            report->pilot_ms + report->optimizer_ms);
  EXPECT_EQ(report->optimizer_calls,
            static_cast<int>(report->plan_history.size()));
  EXPECT_GE(report->jobs_run, report->map_only_jobs);
  EXPECT_GE(report->plan_changes, 0);
  EXPECT_LT(report->plan_changes, report->optimizer_calls);
}

TEST_F(DriverExtraTest, DisconnectedJoinGraphRejected) {
  Query query;
  query.join_block.tables = {{"orders", "o"}, {"nation", "n"}};
  // No edges: cartesian product -> the optimizer must refuse.
  DynoDriver driver(&engine_, &catalog_, &store_, MakeOptions());
  EXPECT_FALSE(driver.Execute(query).ok());
}

TEST_F(DriverExtraTest, UnknownTableFailsCleanly) {
  Query query;
  query.join_block.tables = {{"not_a_table", "x"}, {"orders", "o"}};
  query.join_block.edges = {{"x", "k", "o", "o_orderkey"}};
  DynoDriver driver(&engine_, &catalog_, &store_, MakeOptions());
  auto report = driver.Execute(query);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}


TEST_F(DriverExtraTest, CyclicJoinGraphQ5MatchesOracle) {
  // The paper excluded Q5 ("cyclic join conditions that are not currently
  // supported by our optimizer", §6.1); this enumerator supports cycles.
  Query q5 = MakeTpchQ5();
  EXPECT_TRUE(IsJoinGraphConnected(q5.join_block));
  DynoDriver driver(&engine_, &catalog_, &store_, MakeOptions());
  auto report = driver.Execute(q5);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ExpectOracleMatch(q5, *report);
}

}  // namespace
}  // namespace dyno
