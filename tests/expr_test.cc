#include "expr/expr.h"

#include <gtest/gtest.h>

namespace dyno {
namespace {

Value TestRow() {
  return MakeRow({
      {"id", Value::Int(7)},
      {"price", Value::Double(19.5)},
      {"name", Value::String("acme")},
      {"addr", Value::Array({Value::Struct({{"zip", Value::Int(94301)},
                                            {"state", Value::String("CA")}}),
                             Value::Struct({{"zip", Value::Int(10001)},
                                            {"state", Value::String("NY")}})})},
  });
}

bool EvalBool(const ExprPtr& e, const Value& row) {
  auto v = e->Eval(row);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->type(), Value::Type::kBool);
  return v->bool_value();
}

TEST(ExprTest, ColumnReference) {
  auto v = Col("id")->Eval(TestRow());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int_value(), 7);
}

TEST(ExprTest, MissingColumnIsNull) {
  auto v = Col("nope")->Eval(TestRow());
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST(ExprTest, NestedPathAccess) {
  ExprPtr zip = Path({PathStep::Field("addr"), PathStep::Index(0),
                      PathStep::Field("zip")});
  auto v = zip->Eval(TestRow());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int_value(), 94301);
  EXPECT_EQ(zip->ToString(), "addr[0].zip");
}

TEST(ExprTest, OutOfRangePathIsNull) {
  ExprPtr p = Path({PathStep::Field("addr"), PathStep::Index(9),
                    PathStep::Field("zip")});
  auto v = p->Eval(TestRow());
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST(ExprTest, Comparisons) {
  Value row = TestRow();
  EXPECT_TRUE(EvalBool(Eq(Col("id"), LitInt(7)), row));
  EXPECT_FALSE(EvalBool(Eq(Col("id"), LitInt(8)), row));
  EXPECT_TRUE(EvalBool(Ne(Col("id"), LitInt(8)), row));
  EXPECT_TRUE(EvalBool(Lt(Col("id"), LitInt(8)), row));
  EXPECT_TRUE(EvalBool(Le(Col("id"), LitInt(7)), row));
  EXPECT_TRUE(EvalBool(Gt(Col("price"), LitDouble(19.0)), row));
  EXPECT_TRUE(EvalBool(Ge(Col("price"), LitDouble(19.5)), row));
  EXPECT_TRUE(EvalBool(Eq(Col("name"), LitString("acme")), row));
}

TEST(ExprTest, ComparisonWithNullIsFalse) {
  EXPECT_FALSE(EvalBool(Eq(Col("missing"), LitInt(1)), TestRow()));
  EXPECT_FALSE(EvalBool(Ne(Col("missing"), LitInt(1)), TestRow()));
}

TEST(ExprTest, LogicalOperators) {
  Value row = TestRow();
  ExprPtr t = Eq(Col("id"), LitInt(7));
  ExprPtr f = Eq(Col("id"), LitInt(0));
  EXPECT_TRUE(EvalBool(And(t, t), row));
  EXPECT_FALSE(EvalBool(And(t, f), row));
  EXPECT_TRUE(EvalBool(Or(f, t), row));
  EXPECT_FALSE(EvalBool(Or(f, f), row));
  EXPECT_TRUE(EvalBool(Not(f), row));
  EXPECT_FALSE(EvalBool(Not(t), row));
}

TEST(ExprTest, ShortCircuitAndSkipsRhs) {
  int calls = 0;
  ExprPtr counting = MakeUdf("count", 1.0, [&calls](const Value&) {
    ++calls;
    return Value::Bool(true);
  });
  ExprPtr f = Eq(Col("id"), LitInt(0));
  EXPECT_FALSE(EvalBool(And(f, counting), TestRow()));
  EXPECT_EQ(calls, 0);
}

TEST(ExprTest, Arithmetic) {
  Value row = TestRow();
  auto v = Arith(Expr::ArithOp::kAdd, Col("id"), LitInt(3))->Eval(row);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int_value(), 10);
  v = Arith(Expr::ArithOp::kMul, Col("price"), LitDouble(2.0))->Eval(row);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->double_value(), 39.0);
  v = Arith(Expr::ArithOp::kDiv, LitInt(10), LitInt(4))->Eval(row);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->double_value(), 2.5);
}

TEST(ExprTest, DivisionByZeroIsNull) {
  auto v = Arith(Expr::ArithOp::kDiv, LitInt(1), LitInt(0))->Eval(TestRow());
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST(ExprTest, ArithmeticOnStringFails) {
  auto v = Arith(Expr::ArithOp::kAdd, Col("name"), LitInt(1))->Eval(TestRow());
  EXPECT_FALSE(v.ok());
}

TEST(ExprTest, UdfEvaluationAndOpacity) {
  ExprPtr udf = MakeUdf("double_id", 25.0, [](const Value& row) {
    return Value::Int(row.FindField("id")->int_value() * 2);
  });
  auto v = udf->Eval(TestRow());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int_value(), 14);
  EXPECT_TRUE(udf->ContainsUdf());
  EXPECT_DOUBLE_EQ(udf->CpuCost(), 25.0);
  std::vector<std::string> cols;
  udf->CollectColumns(&cols);
  EXPECT_TRUE(cols.empty()) << "UDFs must not leak column info";
  EXPECT_EQ(udf->ToString(), "double_id(*)");
}

TEST(ExprTest, ContainsUdfPropagates) {
  ExprPtr udf = MakeUdf("u", 1.0, [](const Value&) { return Value::Bool(true); });
  EXPECT_TRUE(And(Eq(Col("id"), LitInt(1)), udf)->ContainsUdf());
  EXPECT_FALSE(Eq(Col("id"), LitInt(1))->ContainsUdf());
}

TEST(ExprTest, CollectColumns) {
  ExprPtr e = And(Eq(Col("a"), LitInt(1)), Gt(Col("b"), Col("c")));
  std::vector<std::string> cols;
  e->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ExprTest, ToStringIsDeterministicSignatureMaterial) {
  ExprPtr a = And(Eq(Col("x"), LitInt(5)), Lt(Col("y"), LitDouble(2.5)));
  ExprPtr b = And(Eq(Col("x"), LitInt(5)), Lt(Col("y"), LitDouble(2.5)));
  EXPECT_EQ(a->ToString(), b->ToString());
  EXPECT_EQ(a->ToString(), "((x = 5) AND (y < 2.5))");
}

TEST(ExprTest, AsSimpleComparisonRecognizesColOpLiteral) {
  std::string col;
  Expr::CompareOp op;
  Value lit;
  EXPECT_TRUE(Eq(Col("x"), LitInt(5))->AsSimpleComparison(&col, &op, &lit));
  EXPECT_EQ(col, "x");
  EXPECT_EQ(op, Expr::CompareOp::kEq);
  EXPECT_EQ(lit.int_value(), 5);
}

TEST(ExprTest, AsSimpleComparisonMirrorsLiteralFirst) {
  std::string col;
  Expr::CompareOp op;
  Value lit;
  EXPECT_TRUE(Lt(LitInt(5), Col("x"))->AsSimpleComparison(&col, &op, &lit));
  EXPECT_EQ(col, "x");
  EXPECT_EQ(op, Expr::CompareOp::kGt) << "5 < x  ==  x > 5";
}

TEST(ExprTest, AsSimpleComparisonRejectsComplexShapes) {
  std::string col;
  Expr::CompareOp op;
  Value lit;
  // Nested path, column-to-column, and UDF shapes are all opaque.
  ExprPtr nested = Eq(Path({PathStep::Field("addr"), PathStep::Index(0),
                            PathStep::Field("zip")}),
                      LitInt(94301));
  EXPECT_FALSE(nested->AsSimpleComparison(&col, &op, &lit));
  EXPECT_FALSE(Eq(Col("a"), Col("b"))->AsSimpleComparison(&col, &op, &lit));
}

TEST(ExprTest, ConjoinAndDecompose) {
  std::vector<ExprPtr> preds = {Eq(Col("a"), LitInt(1)),
                                Eq(Col("b"), LitInt(2)),
                                Eq(Col("c"), LitInt(3))};
  ExprPtr joined = Conjoin(preds);
  std::vector<ExprPtr> factors;
  DecomposeConjunction(joined, &factors);
  ASSERT_EQ(factors.size(), 3u);
  EXPECT_EQ(factors[0]->ToString(), "(a = 1)");
  EXPECT_EQ(factors[2]->ToString(), "(c = 3)");
  EXPECT_EQ(Conjoin({}), nullptr);
  factors.clear();
  DecomposeConjunction(nullptr, &factors);
  EXPECT_TRUE(factors.empty());
}

}  // namespace
}  // namespace dyno
