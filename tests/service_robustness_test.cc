// Tests of the service-level robustness layer (DESIGN.md §6.9): priority
// preemption with checkpoint-resume byte-identity, per-query deadlines at
// wave boundaries, queue-wait and pressure load shedding, the driver's
// whole-job retry budget, and halt → RecoverPending restart recovery.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dyno/checkpoint.h"
#include "obs/metrics.h"
#include "service/query_service.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace dyno {
namespace {

class ServiceRobustnessTest : public ::testing::Test {
 protected:
  ServiceRobustnessTest() : catalog_(&dfs_), engine_(&dfs_, MakeConfig()) {
    TpchConfig config;
    config.scale = 0.0005;
    config.split_bytes = 8 * 1024;
    EXPECT_TRUE(GenerateTpch(&catalog_, config).ok());
    engine_.set_metrics(&metrics_);
  }

  static ClusterConfig MakeConfig() {
    ClusterConfig config;
    config.job_startup_ms = 2000;
    config.map_slots = 20;
    config.reduce_slots = 10;
    config.memory_per_task_bytes = 64 * 1024;
    config.faults.use_env_defaults = false;
    return config;
  }

  DynoOptions MakeOptions() {
    DynoOptions options;
    options.pilot.k = 256;
    options.pilot.mode = PilotRunOptions::Mode::kParallel;
    options.cost.max_memory_bytes = MakeConfig().memory_per_task_bytes;
    options.cost.memory_factor = 1.5;
    options.retry_budget_ms = 0;  // Unlimited; tests opt in explicitly.
    return options;
  }

  QuerySubmission MakeSubmission(const std::string& id, const Query& query,
                                 SimMillis arrival = 0) {
    QuerySubmission sub;
    sub.query_id = id;
    sub.query = query;
    sub.options = MakeOptions();
    sub.arrival_offset_ms = arrival;
    return sub;
  }

  void ExpectMatchesOracle(const Query& query, const QueryRunReport& report) {
    auto expected = NaiveEvaluateJoinBlock(&catalog_, query.join_block);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    ASSERT_NE(report.result, nullptr);
    std::vector<Value> actual = MustReadAll(*report.result);
    std::vector<Value> want = std::move(expected).value();
    SortRowsForComparison(&actual);
    SortRowsForComparison(&want);
    ASSERT_EQ(actual.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(actual[i].Compare(want[i]), 0) << "row " << i;
    }
  }

  uint64_t CounterValue(const std::string& name) {
    return metrics_.GetCounter(name)->value();
  }

  /// Exact equality of observed checkpoint statistics — the "byte-identical
  /// checkpoint stats" half of the preempt-resume contract.
  static void ExpectStatsEqual(const TableStats& a, const TableStats& b) {
    EXPECT_EQ(a.cardinality, b.cardinality);
    EXPECT_EQ(a.avg_record_size, b.avg_record_size);
    EXPECT_EQ(a.from_sample, b.from_sample);
    ASSERT_EQ(a.columns.size(), b.columns.size());
    auto it = b.columns.begin();
    for (const auto& [name, ca] : a.columns) {
      EXPECT_EQ(name, it->first);
      const ColumnStats& cb = it->second;
      EXPECT_EQ(ca.ndv, cb.ndv) << name;
      ASSERT_EQ(ca.min_value.has_value(), cb.min_value.has_value()) << name;
      ASSERT_EQ(ca.max_value.has_value(), cb.max_value.has_value()) << name;
      if (ca.min_value) EXPECT_EQ(ca.min_value->Compare(*cb.min_value), 0);
      if (ca.max_value) EXPECT_EQ(ca.max_value->Compare(*cb.max_value), 0);
      ++it;
    }
  }

  Dfs dfs_;
  Catalog catalog_;
  MapReduceEngine engine_;
  StatsStore store_;
  obs::MetricsRegistry metrics_;
};

// A strictly higher-priority arrival that cannot be admitted preempts the
// running low-priority session at its next submission point; the victim is
// re-queued and resumed from its checkpoint manifest, and its final rows
// and checkpointed statistics are byte-identical to an unpreempted solo
// run of the same query.
TEST_F(ServiceRobustnessTest, PreemptionResumesByteIdentical) {
  QueryServiceOptions opts;
  opts.max_concurrent = 1;
  opts.priority_preemption = true;
  QueryService service(&engine_, &catalog_, &store_, opts);

  QuerySubmission victim = MakeSubmission("vic", MakeTpchQ10());
  // Explicit checkpoint path (rewritten per-query to /ckpt/pre/q/vic); no
  // checkpoint_root is configured, so the manifest survives finalization
  // for the comparison below.
  victim.options.checkpoint_path = "/ckpt/pre";
  victim.priority = 0;
  QuerySubmission high = MakeSubmission("high", MakeTpchQ2(), 6000);
  high.priority = 5;
  ASSERT_TRUE(service.Enqueue(victim).ok());
  ASSERT_TRUE(service.Enqueue(high).ok());

  std::vector<QueryOutcome> outcomes = service.RunAll();
  ASSERT_EQ(outcomes.size(), 2u);
  const QueryOutcome& vic = outcomes[0];
  const QueryOutcome& hi = outcomes[1];
  ASSERT_TRUE(vic.status.ok()) << vic.status.ToString();
  ASSERT_TRUE(hi.status.ok()) << hi.status.ToString();
  EXPECT_GE(vic.preemptions, 1);
  EXPECT_EQ(hi.preemptions, 0);
  EXPECT_EQ(CounterValue("service.preemptions"),
            static_cast<uint64_t>(vic.preemptions));
  // With one slot, the preemptor must have finished before the victim's
  // resumed continuation could.
  EXPECT_LT(hi.finish_ms, vic.finish_ms);
  ExpectMatchesOracle(MakeTpchQ10(), vic.report);
  ExpectMatchesOracle(MakeTpchQ2(), hi.report);
  // The resumed continuation genuinely reused checkpointed steps.
  EXPECT_GE(vic.report.resumed_steps, 1);

  // Solo baseline in the same world: same query, no competition.
  QueryServiceOptions solo_opts;
  solo_opts.max_concurrent = 1;
  QueryService solo(&engine_, &catalog_, &store_, solo_opts);
  QuerySubmission base = MakeSubmission("solo", MakeTpchQ10());
  base.options.checkpoint_path = "/ckpt/solo";
  ASSERT_TRUE(solo.Enqueue(base).ok());
  std::vector<QueryOutcome> solo_out = solo.RunAll();
  ASSERT_EQ(solo_out.size(), 1u);
  ASSERT_TRUE(solo_out[0].status.ok()) << solo_out[0].status.ToString();

  // Byte-identical rows, in file order (not just as sorted multisets).
  std::vector<Value> preempted_rows = MustReadAll(*vic.report.result);
  std::vector<Value> solo_rows = MustReadAll(*solo_out[0].report.result);
  ASSERT_EQ(preempted_rows.size(), solo_rows.size());
  for (size_t i = 0; i < solo_rows.size(); ++i) {
    ASSERT_EQ(preempted_rows[i].Compare(solo_rows[i]), 0) << "row " << i;
  }
  EXPECT_EQ(vic.report.result_records, solo_out[0].report.result_records);

  // Identical checkpointed statistics: same entries covering the same
  // subtrees with the same observed stats (paths/relation ids are
  // run-local and excluded).
  auto pre_m = CheckpointManifest::ReadFrom(dfs_, "/ckpt/pre/q/vic");
  auto solo_m = CheckpointManifest::ReadFrom(dfs_, "/ckpt/solo/q/solo");
  ASSERT_TRUE(pre_m.ok()) << pre_m.status().ToString();
  ASSERT_TRUE(solo_m.ok()) << solo_m.status().ToString();
  ASSERT_EQ(pre_m.value().entries.size(), solo_m.value().entries.size());
  for (size_t i = 0; i < solo_m.value().entries.size(); ++i) {
    const CheckpointEntry& a = pre_m.value().entries[i];
    const CheckpointEntry& b = solo_m.value().entries[i];
    EXPECT_EQ(a.covered, b.covered) << "entry " << i;
    ExpectStatsEqual(a.stats, b.stats);
  }
}

// Deadlines are enforced at wave boundaries for both running and queued
// sessions; deadline_ms = -1 inherits the service default and 0 explicitly
// opts out of it.
TEST_F(ServiceRobustnessTest, DeadlinesForRunningAndQueuedSessions) {
  QueryServiceOptions opts;
  opts.max_concurrent = 1;
  opts.priority_preemption = false;
  opts.default_deadline_ms = 3000;
  QueryService service(&engine_, &catalog_, &store_, opts);

  // Admitted at t=0, parked at its first submission; the first wave runs
  // the clock past 5000 and the session unwinds with DeadlineExceeded.
  QuerySubmission running = MakeSubmission("dl_run", MakeTpchQ10());
  running.deadline_ms = 5000;
  // Queued behind dl_run; inherits the 3000 ms service default and is
  // finalized at a wave boundary without ever being admitted.
  QuerySubmission queued = MakeSubmission("dl_queue", MakeTpchQ10());
  queued.deadline_ms = -1;
  // deadline_ms = 0 overrides the service default: no deadline at all.
  QuerySubmission exempt = MakeSubmission("no_dl", MakeTpchQ10());
  exempt.deadline_ms = 0;
  ASSERT_TRUE(service.Enqueue(running).ok());
  ASSERT_TRUE(service.Enqueue(queued).ok());
  ASSERT_TRUE(service.Enqueue(exempt).ok());

  std::vector<QueryOutcome> outcomes = service.RunAll();
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].status.code(), StatusCode::kDeadlineExceeded)
      << outcomes[0].status.ToString();
  EXPECT_GE(outcomes[0].admit_ms, 0);
  EXPECT_EQ(outcomes[1].status.code(), StatusCode::kDeadlineExceeded)
      << outcomes[1].status.ToString();
  EXPECT_EQ(outcomes[1].admit_ms, -1) << "queued session must never start";
  ASSERT_TRUE(outcomes[2].status.ok()) << outcomes[2].status.ToString();
  ExpectMatchesOracle(MakeTpchQ10(), outcomes[2].report);
  EXPECT_EQ(CounterValue("service.deadline_exceeded"), 2u);
}

// Queue-wait shedding rejects low-priority arrivals that cannot be
// admitted, while priorities above load_shed_max_priority are exempt.
TEST_F(ServiceRobustnessTest, QueueWaitSheddingSparesHighPriority) {
  QueryServiceOptions opts;
  opts.max_concurrent = 1;
  opts.priority_preemption = false;
  opts.load_shed_queue_ms = 4000;
  opts.load_shed_max_priority = 0;
  QueryService service(&engine_, &catalog_, &store_, opts);

  // Highest priority, so the hog is admitted first and the other two wait
  // behind its single slot.
  QuerySubmission hog = MakeSubmission("hog", MakeTpchQ10());
  hog.priority = 5;
  ASSERT_TRUE(service.Enqueue(hog).ok());
  ASSERT_TRUE(service.Enqueue(MakeSubmission("lowpri", MakeTpchQ10())).ok());
  QuerySubmission high = MakeSubmission("highpri", MakeTpchQ2());
  high.priority = 1;
  ASSERT_TRUE(service.Enqueue(high).ok());

  std::vector<QueryOutcome> outcomes = service.RunAll();
  ASSERT_EQ(outcomes.size(), 3u);
  ASSERT_TRUE(outcomes[0].status.ok()) << outcomes[0].status.ToString();
  EXPECT_EQ(outcomes[1].status.code(), StatusCode::kResourceExhausted)
      << outcomes[1].status.ToString();
  EXPECT_EQ(outcomes[1].admit_ms, -1) << "shed session must never start";
  ASSERT_TRUE(outcomes[2].status.ok()) << outcomes[2].status.ToString();
  ExpectMatchesOracle(MakeTpchQ2(), outcomes[2].report);
  EXPECT_EQ(CounterValue("service.shed"), 1u);
}

// Pressure shedding rejects a blocked low-priority arrival as soon as the
// previous wave's busy-slot fraction is at or above the threshold, without
// waiting out a queue-time budget.
TEST_F(ServiceRobustnessTest, PressureSheddingRejectsImmediately) {
  QueryServiceOptions opts;
  opts.max_concurrent = 1;
  opts.priority_preemption = false;
  // Any non-idle wave exceeds this; queue-wait shedding stays off so the
  // rejection can only come from the pressure signal.
  opts.load_shed_pressure = 1e-6;
  QueryService service(&engine_, &catalog_, &store_, opts);

  ASSERT_TRUE(service.Enqueue(MakeSubmission("hog", MakeTpchQ10())).ok());
  // Arrives once waves are already running, so last_wave_pressure() is live.
  ASSERT_TRUE(
      service.Enqueue(MakeSubmission("late", MakeTpchQ10(), 3000)).ok());

  std::vector<QueryOutcome> outcomes = service.RunAll();
  ASSERT_EQ(outcomes.size(), 2u);
  ASSERT_TRUE(outcomes[0].status.ok()) << outcomes[0].status.ToString();
  EXPECT_EQ(outcomes[1].status.code(), StatusCode::kResourceExhausted)
      << outcomes[1].status.ToString();
  EXPECT_EQ(CounterValue("service.shed"), 1u);
}

// A halted (crashed) service leaves pending markers and manifests on the
// DFS; a successor instance re-admits exactly the marked queries via
// RecoverPending and completes them with oracle-identical results,
// resuming from their checkpoints rather than starting over.
TEST_F(ServiceRobustnessTest, HaltThenRecoverPendingCompletesInFlight) {
  QueryServiceOptions opts;
  opts.max_concurrent = 2;
  opts.checkpoint_root = "/svc";
  opts.halt_at_ms = 6000;
  QueryService crashed(&engine_, &catalog_, &store_, opts);

  QuerySubmission r1 = MakeSubmission("r1", MakeTpchQ10());
  QuerySubmission r2 = MakeSubmission("r2", MakeTpchQ5());
  ASSERT_TRUE(crashed.Enqueue(r1).ok());
  ASSERT_TRUE(crashed.Enqueue(r2).ok());
  std::vector<QueryOutcome> first = crashed.RunAll();
  ASSERT_EQ(first.size(), 2u);
  for (const QueryOutcome& outcome : first) {
    EXPECT_EQ(outcome.status.code(), StatusCode::kCancelled)
        << outcome.query_id << ": " << outcome.status.ToString();
  }
  // The crash left the service namespace intact.
  EXPECT_TRUE(dfs_.Exists("/svc/pending/r1"));
  EXPECT_TRUE(dfs_.Exists("/svc/pending/r2"));

  QueryServiceOptions recover_opts;
  recover_opts.max_concurrent = 2;
  recover_opts.checkpoint_root = "/svc";
  QueryService recovered(&engine_, &catalog_, &store_, recover_opts);
  // Only r1 resupplied: r2's marker must be left untouched for a later
  // pass rather than dropped.
  auto count = recovered.RecoverPending({r1});
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count.value(), 1);
  EXPECT_TRUE(dfs_.Exists("/svc/pending/r2"));
  auto rest = recovered.RecoverPending({r2});
  ASSERT_TRUE(rest.ok()) << rest.status().ToString();
  EXPECT_EQ(rest.value(), 1);

  std::vector<QueryOutcome> second = recovered.RunAll();
  ASSERT_EQ(second.size(), 2u);
  int resumed_steps = 0;
  for (const QueryOutcome& outcome : second) {
    ASSERT_TRUE(outcome.status.ok())
        << outcome.query_id << ": " << outcome.status.ToString();
    EXPECT_TRUE(outcome.recovered);
    resumed_steps += outcome.report.resumed_steps;
  }
  ExpectMatchesOracle(MakeTpchQ10(), second[0].report);
  ExpectMatchesOracle(MakeTpchQ5(), second[1].report);
  // At least one query picked up checkpointed work instead of re-running.
  EXPECT_GE(resumed_steps, 1);
  EXPECT_EQ(CounterValue("service.recovered"), 2u);
  // Finalization cleaned the recovered queries' service state.
  EXPECT_FALSE(dfs_.Exists("/svc/pending/r1"));
  EXPECT_FALSE(dfs_.Exists("/svc/pending/r2"));
  EXPECT_FALSE(dfs_.Exists("/svc/q/r1"));
  EXPECT_FALSE(dfs_.Exists("/svc/q/r2"));
}

// RecoverPending preconditions: it needs a checkpoint namespace to scan.
TEST_F(ServiceRobustnessTest, RecoverPendingRequiresCheckpointRoot) {
  QueryServiceOptions opts;
  QueryService service(&engine_, &catalog_, &store_, opts);
  auto result = service.RecoverPending({MakeSubmission("q", MakeTpchQ10())});
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition)
      << result.status().ToString();
}

// The retry budget caps whole-job re-submissions: under sustained transient
// job failures a 1 ms budget admits at most one charged retry and then lets
// failures take the permanent path, while an unlimited budget keeps
// retrying.
TEST_F(ServiceRobustnessTest, RetryBudgetCapsJobRetries) {
  ClusterConfig config = MakeConfig();
  // Task attempts run out fast, so most jobs fail transiently and the
  // driver's job-retry ladder is exercised hard.
  config.faults.task_failure_rate = 0.5;
  config.faults.max_task_attempts = 2;
  config.faults.seed = 7;
  MapReduceEngine engine(&dfs_, config);
  obs::MetricsRegistry metrics;
  engine.set_metrics(&metrics);

  DynoOptions options = MakeOptions();
  options.exec.query_id = "budget";
  // No pilot phase: pilot jobs are not retried at the job level, and under
  // this failure rate they would kill the query before any execution step
  // reached the retry ladder.
  options.use_pilot_runs = false;
  options.max_job_attempts = 8;
  options.retry_budget_ms = 1;
  DynoDriver driver(&engine, &catalog_, &store_, options);
  auto report = driver.Execute(MakeTpchQ10());
  // Whether or not replanning salvaged the query, the budget must have
  // tripped and stopped the retry ladder.
  EXPECT_GE(metrics.GetCounter("driver.retry_budget_exhausted")->value(), 1u);
  if (report.ok()) {
    EXPECT_TRUE(report.value().retry_budget_exhausted);
    EXPECT_GE(report.value().retry_slot_ms, 1);
  }
}

}  // namespace
}  // namespace dyno
