// Tests of the cross-query subtree-result cache (DESIGN.md §6.7) and the
// data-version plumbing underneath it: hit/miss/eviction/invalidation
// units, the stale pilot-statistics regression (a table rewritten between
// two queries must not serve pre-rewrite statistics), checkpoint-manifest
// version gating, cache-on vs cache-off byte identity for a repeated TPC-H
// batch through the QueryService, and resume-after-kill with a warm cache.

#include "cache/subtree_cache.h"

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "dyno/checkpoint.h"
#include "dyno/driver.h"
#include "pilot/pilot_runner.h"
#include "service/query_service.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace dyno {
namespace {

std::string FileBytes(const DfsFile& file) {
  std::string out;
  for (const Split& split : file.splits()) out += split.data;
  return out;
}

std::vector<Value> MakeRows(int n, int tag = 0) {
  std::vector<Value> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    rows.push_back(MakeRow({{"id", Value::Int(i)}, {"tag", Value::Int(tag)}}));
  }
  return rows;
}

// --- SubtreeCache units ---

class SubtreeCacheUnitTest : public ::testing::Test {
 protected:
  SubtreeCacheUnitTest() : catalog_(&dfs_) {
    EXPECT_TRUE(catalog_.CreateTable("t", MakeRows(50)).ok());
  }

  std::map<std::string, uint64_t> Versions() {
    return {{"t", catalog_.TableVersion("t")}};
  }

  std::shared_ptr<DfsFile> Rows(const std::string& path, int n, int tag = 0) {
    auto file = WriteRows(&dfs_, path, MakeRows(n, tag));
    EXPECT_TRUE(file.ok()) << file.status().ToString();
    return *file;
  }

  static TableStats StatsOf(double cardinality) {
    TableStats stats;
    stats.cardinality = cardinality;
    return stats;
  }

  Dfs dfs_;
  Catalog catalog_;
};

TEST_F(SubtreeCacheUnitTest, HitReturnsPinnedBytesAndStats) {
  SubtreeCache cache(&dfs_, &catalog_, SubtreeCacheOptions());
  auto result = Rows("/tmp/r1", 10);
  ASSERT_TRUE(cache.Publish("k1", Versions(), *result, StatsOf(10), 5).ok());
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(cache.bytes(), 0u);

  auto hit = cache.Lookup("k1", 6);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(FileBytes(*hit->file), FileBytes(*result));
  EXPECT_DOUBLE_EQ(hit->stats.cardinality, 10.0);
  EXPECT_EQ(cache.hits(), 1u);

  EXPECT_FALSE(cache.Lookup("nosuch", 7).has_value());
  EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(SubtreeCacheUnitTest, PinnedCopySurvivesSourceDeletion) {
  SubtreeCache cache(&dfs_, &catalog_, SubtreeCacheOptions());
  auto result = Rows("/tmp/doomed", 8);
  std::string want = FileBytes(*result);
  ASSERT_TRUE(cache.Publish("k", Versions(), *result, StatsOf(8), 1).ok());
  // The publisher's temp directory is reclaimed when its session ends; the
  // cached entry must not dangle.
  ASSERT_TRUE(dfs_.Delete("/tmp/doomed").ok());
  auto hit = cache.Lookup("k", 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(FileBytes(*hit->file), want);
}

TEST_F(SubtreeCacheUnitTest, TableRewriteInvalidatesLazily) {
  SubtreeCache cache(&dfs_, &catalog_, SubtreeCacheOptions());
  ASSERT_TRUE(
      cache.Publish("k", Versions(), *Rows("/tmp/r", 10), StatsOf(10), 1).ok());
  ASSERT_TRUE(cache.Lookup("k", 2).has_value());

  // Re-point the table at new data: the recorded version no longer matches,
  // so the next lookup must drop the entry instead of serving stale rows.
  Rows("/data/t_v2", 20, /*tag=*/1);
  ASSERT_TRUE(catalog_.ReplaceTable("t", "/data/t_v2").ok());
  EXPECT_FALSE(cache.Lookup("k", 3).has_value());
  EXPECT_EQ(cache.invalidations(), 1u);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST_F(SubtreeCacheUnitTest, InvalidateTableDropsEagerly) {
  SubtreeCache cache(&dfs_, &catalog_, SubtreeCacheOptions());
  ASSERT_TRUE(
      cache.Publish("a", Versions(), *Rows("/tmp/a", 5), StatsOf(5), 1).ok());
  ASSERT_TRUE(cache.Publish("b", {{"other", 7}}, *Rows("/tmp/b", 5),
                            StatsOf(5), 1)
                  .ok());
  EXPECT_EQ(cache.InvalidateTable("t", 2), 1);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_FALSE(cache.Lookup("a", 3).has_value());
}

TEST_F(SubtreeCacheUnitTest, LruEvictsLeastRecentlyUsed) {
  auto size_of = [&](const char* path) {
    return Rows(path, 40)->num_bytes();
  };
  SubtreeCacheOptions options;
  // Budget for two 40-row results but not three.
  options.max_bytes = 2 * size_of("/tmp/probe") + 1;
  SubtreeCache cache(&dfs_, &catalog_, options);
  ASSERT_TRUE(
      cache.Publish("a", Versions(), *Rows("/tmp/a", 40), StatsOf(40), 1).ok());
  ASSERT_TRUE(
      cache.Publish("b", Versions(), *Rows("/tmp/b", 40), StatsOf(40), 2).ok());
  // Touch "a" so "b" is the LRU victim.
  ASSERT_TRUE(cache.Lookup("a", 3).has_value());
  ASSERT_TRUE(
      cache.Publish("c", Versions(), *Rows("/tmp/c", 40), StatsOf(40), 4).ok());
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Lookup("a", 5).has_value());
  EXPECT_TRUE(cache.Lookup("c", 6).has_value());
  EXPECT_FALSE(cache.Lookup("b", 7).has_value());
}

TEST_F(SubtreeCacheUnitTest, EntryCountBoundEvicts) {
  SubtreeCacheOptions options;
  options.max_entries = 1;
  SubtreeCache cache(&dfs_, &catalog_, options);
  ASSERT_TRUE(
      cache.Publish("a", Versions(), *Rows("/tmp/a", 5), StatsOf(5), 1).ok());
  ASSERT_TRUE(
      cache.Publish("b", Versions(), *Rows("/tmp/b", 5), StatsOf(5), 2).ok());
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.Lookup("a", 3).has_value());
  EXPECT_TRUE(cache.Lookup("b", 4).has_value());
}

TEST_F(SubtreeCacheUnitTest, OversizedResultNotAdmitted) {
  SubtreeCacheOptions options;
  options.max_bytes = 16;  // Smaller than any real result.
  SubtreeCache cache(&dfs_, &catalog_, options);
  Status st = cache.Publish("big", Versions(), *Rows("/tmp/big", 100),
                            StatsOf(100), 1);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST_F(SubtreeCacheUnitTest, FirstPublisherWins) {
  SubtreeCache cache(&dfs_, &catalog_, SubtreeCacheOptions());
  ASSERT_TRUE(
      cache.Publish("k", Versions(), *Rows("/tmp/one", 10), StatsOf(1), 1)
          .ok());
  // Concurrent sessions produce identical bytes for identical keys; the
  // second publish of a still-fresh key is a no-op.
  ASSERT_TRUE(
      cache.Publish("k", Versions(), *Rows("/tmp/two", 10, 9), StatsOf(2), 2)
          .ok());
  EXPECT_EQ(cache.entries(), 1u);
  auto hit = cache.Lookup("k", 3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->stats.cardinality, 1.0);
}

// --- The stale pilot-statistics regression ---

// The bug this PR fixes: PilotRunner reused StatsStore entries purely by
// expression signature, so a query running after a table rewrite planned
// from the *old* table's statistics. Stats are now versioned by
// Catalog::TableVersion, making the rewrite a stale miss.
TEST(StalePilotStatsRegressionTest, TableRewriteForcesFreshPilotRun) {
  Dfs dfs;
  Catalog catalog(&dfs);
  ClusterConfig config;
  config.job_startup_ms = 1000;
  config.map_slots = 8;
  config.faults.use_env_defaults = false;
  MapReduceEngine engine(&dfs, config);
  ASSERT_TRUE(catalog.CreateTable("t", MakeRows(200)).ok());

  LeafExpr leaf;
  leaf.alias = "a";
  leaf.table = "t";
  leaf.join_columns = {"id"};

  StatsStore store;
  PilotRunOptions options;
  options.reuse_stats = true;
  options.k = 4096;  // Larger than either table: exact cardinalities.

  PilotRunner first(&engine, &catalog, &store, options);
  auto before = first.Run({leaf});
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  ASSERT_EQ(before->runs_executed, 1);
  EXPECT_DOUBLE_EQ(before->leaves[0].stats.cardinality, 200.0);

  // Rewrite the table between the two queries (10x more rows).
  auto bigger = WriteRows(&dfs, "/data/t_v2", MakeRows(2000, /*tag=*/1));
  ASSERT_TRUE(bigger.ok());
  ASSERT_TRUE(catalog.ReplaceTable("t", "/data/t_v2").ok());

  // Same signature, same shared store, new data: the cached entry is stale
  // and must be re-measured. (The old behavior reused it — this assertion
  // is the regression tripwire.)
  PilotRunner second(&engine, &catalog, &store, options);
  auto after = second.Run({leaf});
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->runs_skipped_cached, 0)
      << "pilot reused statistics of the pre-rewrite table";
  EXPECT_EQ(after->runs_executed, 1);
  EXPECT_DOUBLE_EQ(after->leaves[0].stats.cardinality, 2000.0);
  EXPECT_GT(store.stale_misses(), 0u);

  // Without a rewrite the versioned entry still serves reuse.
  PilotRunner third(&engine, &catalog, &store, options);
  auto again = third.Run({leaf});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->runs_skipped_cached, 1);
  EXPECT_EQ(again->runs_executed, 0);
}

// --- Checkpoint manifest version gating ---

TEST(CheckpointManifestVersionTest, RoundTripPreservesTableVersions) {
  CheckpointManifest manifest;
  manifest.temp_counter = 3;
  manifest.leaf_signatures = {{"a", "t|f"}};
  CheckpointEntry entry;
  entry.signature = "sig";
  entry.relation_id = "t1";
  entry.path = "/p";
  entry.covered = {"a"};
  entry.stats.cardinality = 5;
  entry.table_versions = {{"t", 0xdeadbeefdeadbeefull}, {"u", 1}};
  manifest.entries.push_back(entry);

  auto back = CheckpointManifest::FromValue(manifest.ToValue());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->entries.size(), 1u);
  EXPECT_EQ(back->entries[0].table_versions, entry.table_versions);
}

TEST(CheckpointManifestVersionTest, RejectsNewerVersion) {
  // A newer manifest is refused outright rather than half-parsed: a rolled-
  // back driver must not trust fields it does not understand.
  StructFields f;
  f.emplace_back("version", Value::Int(CheckpointManifest::kVersion + 1));
  f.emplace_back("temp_counter", Value::Int(0));
  f.emplace_back("leaf_signatures", Value::Array({}));
  f.emplace_back("entries", Value::Array({}));
  auto parsed = CheckpointManifest::FromValue(Value::Struct(std::move(f)));
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("unsupported version"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(CheckpointManifestVersionTest, RejectsEntryWithoutTableVersions) {
  // v3 entries must carry their data versions; an entry without them could
  // be substituted over rewritten data.
  StructFields stats;
  stats.emplace_back("cardinality", Value::Double(1));
  stats.emplace_back("avg_record_size", Value::Double(1));
  stats.emplace_back("from_sample", Value::Bool(false));
  stats.emplace_back("columns", Value::Array({}));
  StructFields entry;
  entry.emplace_back("signature", Value::String("s"));
  entry.emplace_back("relation_id", Value::String("t1"));
  entry.emplace_back("path", Value::String("/p"));
  entry.emplace_back("covered", Value::Array({Value::String("a")}));
  entry.emplace_back("stats", Value::Struct(std::move(stats)));
  StructFields f;
  f.emplace_back("version", Value::Int(CheckpointManifest::kVersion));
  f.emplace_back("temp_counter", Value::Int(0));
  f.emplace_back("leaf_signatures", Value::Array({}));
  f.emplace_back("entries", Value::Array({Value::Struct(std::move(entry))}));
  EXPECT_FALSE(
      CheckpointManifest::FromValue(Value::Struct(std::move(f))).ok());
}

// --- End-to-end: cache on/off byte identity over a repeated TPC-H batch ---

class CacheBatchTest : public ::testing::Test {
 protected:
  static ClusterConfig MakeConfig() {
    ClusterConfig config;
    config.job_startup_ms = 2000;
    config.map_slots = 20;
    config.reduce_slots = 10;
    config.memory_per_task_bytes = 64 * 1024;
    config.faults.use_env_defaults = false;
    return config;
  }

  struct BatchResult {
    std::vector<std::string> result_bytes;  ///< Per query, enqueue order.
    int total_jobs = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_evictions = 0;
  };

  static BatchResult RunBatch(bool with_cache, int repeats = 3) {
    Dfs dfs;
    Catalog catalog(&dfs);
    MapReduceEngine engine(&dfs, MakeConfig());
    TpchConfig tpch;
    tpch.scale = 0.001;
    tpch.split_bytes = 8 * 1024;
    EXPECT_TRUE(GenerateTpch(&catalog, tpch).ok());

    StatsStore store;
    QueryServiceOptions opts;
    opts.max_concurrent = 2;
    opts.enable_subtree_cache = with_cache;
    QueryService service(&engine, &catalog, &store, opts);
    for (int i = 0; i < 2 * repeats; ++i) {
      QuerySubmission sub;
      sub.query_id = StrFormat("q%d", i);
      sub.query = (i % 2 == 0) ? MakeTpchQ10() : MakeTpchQ5();
      sub.options.pilot.k = 256;
      sub.options.pilot.mode = PilotRunOptions::Mode::kParallel;
      sub.options.cost.max_memory_bytes = MakeConfig().memory_per_task_bytes;
      sub.options.cost.memory_factor = 1.5;
      sub.arrival_offset_ms = 0;
      EXPECT_TRUE(service.Enqueue(std::move(sub)).ok());
    }
    BatchResult out;
    for (const QueryOutcome& outcome : service.RunAll()) {
      EXPECT_TRUE(outcome.status.ok())
          << outcome.query_id << ": " << outcome.status.ToString();
      out.result_bytes.push_back(outcome.report.result == nullptr
                                     ? std::string()
                                     : FileBytes(*outcome.report.result));
      out.total_jobs += outcome.report.jobs_run;
    }
    if (service.subtree_cache() != nullptr) {
      out.cache_hits = service.subtree_cache()->hits();
      out.cache_evictions = service.subtree_cache()->evictions();
    }
    return out;
  }
};

TEST_F(CacheBatchTest, CacheOnOffByteIdentity) {
  BatchResult off = RunBatch(false);
  BatchResult on = RunBatch(true);
  ASSERT_EQ(off.result_bytes.size(), on.result_bytes.size());
  for (size_t i = 0; i < off.result_bytes.size(); ++i) {
    EXPECT_FALSE(off.result_bytes[i].empty()) << "query " << i;
    EXPECT_EQ(off.result_bytes[i], on.result_bytes[i])
        << "query " << i << " result diverged under the cache";
  }
  // The repeated portion of the batch was genuinely served from the cache.
  EXPECT_EQ(off.cache_hits, 0u);
  EXPECT_GT(on.cache_hits, 0u);
  EXPECT_LT(on.total_jobs, off.total_jobs)
      << "cache hits must replace execution steps, not add to them";
}

TEST_F(CacheBatchTest, TinyCacheEvictsButStaysCorrect) {
  // Degenerate budget: every publish evicts something. Results must still
  // be byte-identical; only the hit rate may suffer.
  Dfs dfs;
  Catalog catalog(&dfs);
  MapReduceEngine engine(&dfs, MakeConfig());
  TpchConfig tpch;
  tpch.scale = 0.001;
  tpch.split_bytes = 8 * 1024;
  ASSERT_TRUE(GenerateTpch(&catalog, tpch).ok());
  StatsStore store;
  QueryServiceOptions opts;
  opts.enable_subtree_cache = true;
  opts.subtree_cache.max_entries = 1;
  QueryService service(&engine, &catalog, &store, opts);
  BatchResult reference = RunBatch(false, /*repeats=*/2);
  for (int i = 0; i < 4; ++i) {
    QuerySubmission sub;
    sub.query_id = StrFormat("q%d", i);
    sub.query = (i % 2 == 0) ? MakeTpchQ10() : MakeTpchQ5();
    sub.options.pilot.k = 256;
    sub.options.pilot.mode = PilotRunOptions::Mode::kParallel;
    sub.options.cost.max_memory_bytes = MakeConfig().memory_per_task_bytes;
    sub.options.cost.memory_factor = 1.5;
    sub.arrival_offset_ms = 0;
    ASSERT_TRUE(service.Enqueue(std::move(sub)).ok());
  }
  std::vector<QueryOutcome> outcomes = service.RunAll();
  ASSERT_EQ(outcomes.size(), 4u);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].status.ok()) << outcomes[i].status.ToString();
    EXPECT_EQ(FileBytes(*outcomes[i].report.result),
              reference.result_bytes[i])
        << "query " << i;
  }
  EXPECT_GT(service.subtree_cache()->evictions(), 0u);
  EXPECT_LE(service.subtree_cache()->entries(), 1u);
}

// --- Resume after a driver kill, with a cache warmed by other queries ---

TEST(SubtreeCacheResumeTest, ResumeAfterKillWithWarmCache) {
  Dfs dfs;
  Catalog catalog(&dfs);
  ClusterConfig config;
  config.job_startup_ms = 2000;
  config.map_slots = 20;
  config.reduce_slots = 10;
  config.memory_per_task_bytes = 64 * 1024;
  config.faults.use_env_defaults = false;
  MapReduceEngine engine(&dfs, config);
  TpchConfig tpch;
  tpch.scale = 0.0005;
  tpch.split_bytes = 8 * 1024;
  ASSERT_TRUE(GenerateTpch(&catalog, tpch).ok());

  SubtreeCache cache(&dfs, &catalog, SubtreeCacheOptions());
  StatsStore store;
  Query query = MakeTpchQ10();
  DynoOptions base;
  base.pilot.k = 256;
  base.pilot.mode = PilotRunOptions::Mode::kParallel;
  base.cost.max_memory_bytes = config.memory_per_task_bytes;
  base.cost.memory_factor = 1.5;
  base.subtree_cache = &cache;

  // The victim dies after its first accounted step (cold cache: that step
  // executed for real and was published + checkpointed).
  DynoOptions kill = base;
  kill.exec.query_id = "victim";
  kill.checkpoint_path = "/ckpt/warm";
  kill.abort_after_jobs = 1;
  DynoDriver killed(&engine, &catalog, &store, kill);
  auto killed_report = killed.Execute(query);
  ASSERT_FALSE(killed_report.ok());
  EXPECT_EQ(killed_report.status().code(), StatusCode::kCancelled);

  // Another session of the same query runs to completion meanwhile,
  // warming the cache with every subtree.
  DynoOptions other = base;
  other.exec.query_id = "other";
  DynoDriver bystander(&engine, &catalog, &store, other);
  auto other_report = bystander.Execute(query);
  ASSERT_TRUE(other_report.ok()) << other_report.status().ToString();
  ASSERT_GT(cache.entries(), 0u);

  // The resumed victim substitutes its checkpointed step AND serves the
  // rest from the warm cache; the result is byte-identical to the
  // uninterrupted run.
  DynoOptions resume = base;
  resume.exec.query_id = "victim2";
  resume.checkpoint_path = "/ckpt/warm";
  DynoDriver resumed(&engine, &catalog, &store, resume);
  uint64_t hits_before = cache.hits();
  auto resumed_report = resumed.Resume(query);
  ASSERT_TRUE(resumed_report.ok()) << resumed_report.status().ToString();
  EXPECT_GT(resumed_report->resumed_steps, 0)
      << "the checkpointed step must be substituted, not re-executed";
  EXPECT_GT(cache.hits(), hits_before)
      << "the warm cache must serve the remaining steps";
  EXPECT_EQ(FileBytes(*resumed_report->result),
            FileBytes(*other_report->result));
  EXPECT_EQ(resumed_report->result_records, other_report->result_records);
  EXPECT_LT(resumed_report->jobs_run, other_report->jobs_run);

  // And it is still the right answer.
  auto expected = NaiveEvaluateJoinBlock(&catalog, query.join_block);
  ASSERT_TRUE(expected.ok());
  std::vector<Value> actual = MustReadAll(*resumed_report->result);
  std::vector<Value> want = std::move(expected).value();
  SortRowsForComparison(&actual);
  SortRowsForComparison(&want);
  ASSERT_EQ(actual.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(actual[i].Compare(want[i]), 0) << "row " << i;
  }
}

// --- Env knob plumbing ---

TEST(SubtreeCacheOptionsTest, EnvOverridesParse) {
  auto saved = [](const char* name) -> std::string {
    const char* v = getenv(name);
    return v == nullptr ? std::string() : std::string(v);
  };
  std::string old_mb = saved("DYNO_SUBTREE_CACHE_MB");
  std::string old_entries = saved("DYNO_SUBTREE_CACHE_ENTRIES");
  std::string old_stats = saved("DYNO_STATS_CACHE");
  setenv("DYNO_SUBTREE_CACHE_MB", "8", 1);
  setenv("DYNO_SUBTREE_CACHE_ENTRIES", "12", 1);
  setenv("DYNO_STATS_CACHE", "0", 1);

  SubtreeCacheOptions cache_options;
  cache_options.ApplyEnvOverrides();
  EXPECT_EQ(cache_options.max_bytes, 8ull * 1024 * 1024);
  EXPECT_EQ(cache_options.max_entries, 12u);

  QueryServiceOptions service_options;
  service_options.ApplyEnvOverrides();
  EXPECT_TRUE(service_options.enable_subtree_cache);
  EXPECT_EQ(service_options.subtree_cache.max_bytes, 8ull * 1024 * 1024);
  EXPECT_FALSE(service_options.share_pilot_stats);

  setenv("DYNO_SUBTREE_CACHE_MB", "0", 1);
  QueryServiceOptions disabled;
  disabled.enable_subtree_cache = true;
  disabled.ApplyEnvOverrides();
  EXPECT_FALSE(disabled.enable_subtree_cache) << "0 MB must disable";

  auto restore = [](const char* name, const std::string& value) {
    if (value.empty()) {
      unsetenv(name);
    } else {
      setenv(name, value.c_str(), 1);
    }
  };
  restore("DYNO_SUBTREE_CACHE_MB", old_mb);
  restore("DYNO_SUBTREE_CACHE_ENTRIES", old_entries);
  restore("DYNO_STATS_CACHE", old_stats);
}

}  // namespace
}  // namespace dyno
