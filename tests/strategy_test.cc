#include "dyno/strategy.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace dyno {
namespace {

JobUnit MakeUnit(int64_t uid, double cost, int uncertainty) {
  JobUnit unit;
  unit.uid = uid;
  unit.est_cost = cost;
  unit.uncertainty = uncertainty;
  return unit;
}

class StrategyTest : public ::testing::Test {
 protected:
  StrategyTest() {
    units_.push_back(MakeUnit(1, 100.0, 1));  // cheap, certain
    units_.push_back(MakeUnit(2, 500.0, 3));  // expensive, uncertain
    units_.push_back(MakeUnit(3, 200.0, 3));  // mid, equally uncertain
    units_.push_back(MakeUnit(4, 50.0, 2));   // cheapest-but-one uncertainty
    for (const JobUnit& unit : units_) pointers_.push_back(&unit);
  }

  std::vector<JobUnit> units_;
  std::vector<const JobUnit*> pointers_;
};

TEST_F(StrategyTest, Cheapest1PicksMinCost) {
  auto picked = PickLeafJobs(ExecutionStrategy::kCheapest1, pointers_);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0]->uid, 4);
}

TEST_F(StrategyTest, Cheapest2PicksTwoCheapest) {
  auto picked = PickLeafJobs(ExecutionStrategy::kCheapest2, pointers_);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0]->uid, 4);
  EXPECT_EQ(picked[1]->uid, 1);
}

TEST_F(StrategyTest, Uncertain1PicksMostJoinsCheapestTieBreak) {
  auto picked = PickLeafJobs(ExecutionStrategy::kUncertain1, pointers_);
  ASSERT_EQ(picked.size(), 1u);
  // Units 2 and 3 tie at uncertainty 3; the cheaper (3) wins the tie so the
  // next re-optimization point arrives sooner.
  EXPECT_EQ(picked[0]->uid, 3);
}

TEST_F(StrategyTest, Uncertain2PicksTwoMostUncertain) {
  auto picked = PickLeafJobs(ExecutionStrategy::kUncertain2, pointers_);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0]->uid, 3);
  EXPECT_EQ(picked[1]->uid, 2);
}

TEST_F(StrategyTest, TakeIsCappedByAvailableJobs) {
  std::vector<const JobUnit*> one = {pointers_[0]};
  auto picked = PickLeafJobs(ExecutionStrategy::kUncertain2, one);
  EXPECT_EQ(picked.size(), 1u);
  EXPECT_TRUE(PickLeafJobs(ExecutionStrategy::kCheapest2, {}).empty());
}

TEST_F(StrategyTest, SimpleStrategiesClassified) {
  EXPECT_TRUE(IsSimpleStrategy(ExecutionStrategy::kSimpleSerial));
  EXPECT_TRUE(IsSimpleStrategy(ExecutionStrategy::kSimpleParallel));
  EXPECT_FALSE(IsSimpleStrategy(ExecutionStrategy::kUncertain1));
  EXPECT_FALSE(IsSimpleStrategy(ExecutionStrategy::kCheapest2));
}

TEST_F(StrategyTest, NamesAreDistinct) {
  std::set<std::string> names;
  for (ExecutionStrategy strategy :
       {ExecutionStrategy::kSimpleSerial, ExecutionStrategy::kSimpleParallel,
        ExecutionStrategy::kUncertain1, ExecutionStrategy::kUncertain2,
        ExecutionStrategy::kCheapest1, ExecutionStrategy::kCheapest2}) {
    names.insert(ExecutionStrategyName(strategy));
  }
  EXPECT_EQ(names.size(), 6u);
}

TEST_F(StrategyTest, InputOrderDoesNotChangeSelection) {
  std::vector<const JobUnit*> reversed(pointers_.rbegin(),
                                       pointers_.rend());
  auto a = PickLeafJobs(ExecutionStrategy::kUncertain2, pointers_);
  auto b = PickLeafJobs(ExecutionStrategy::kUncertain2, reversed);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i]->uid, b[i]->uid);
}

}  // namespace
}  // namespace dyno
