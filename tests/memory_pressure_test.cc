// Tests of the cluster memory model (DESIGN.md §6.10): reduce-task memory
// accounting, deterministic spill-to-DFS with byte-identity to the
// in-memory path, strict-mode OutOfMemory, the driver's OOM retry ladder
// (spill → doubled reducers → permanent), plan-time/run-time memory-model
// agreement, spill × crash × resume, and memory-aware service admission.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dyno/driver.h"
#include "mr/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/query_service.h"
#include "storage/dfs.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace dyno {
namespace {

// ---------------------------------------------------------------------------
// Engine level: spill path vs in-memory oracle, pinned accounting, strict
// OOM, spill-run corruption, env knobs.
// ---------------------------------------------------------------------------

Value Row(int64_t id, int64_t group) {
  return MakeRow({{"id", Value::Int(id)}, {"g", Value::Int(group)}});
}

class MemoryPressureEngineTest : public ::testing::Test {
 protected:
  /// Baseline (unbounded) cluster; tests override the memory fields.
  /// Env defaults are off so the assertions hold under every ctest preset
  /// (the `memory` preset exports tight DYNO_TASK_MEMORY_BYTES + fault
  /// rates that would otherwise rewrite these configs).
  static ClusterConfig BaseConfig() {
    ClusterConfig config;
    config.job_startup_ms = 1000;
    config.map_slots = 4;
    config.reduce_slots = 4;
    config.faults.use_env_defaults = false;
    return config;
  }

  static ClusterConfig SpillConfig(uint64_t budget) {
    ClusterConfig config = BaseConfig();
    config.reduce_memory_mode = ClusterConfig::ReduceMemoryMode::kSpill;
    config.memory_per_task_bytes = budget;
    return config;
  }

  static ClusterConfig StrictConfig(uint64_t budget) {
    ClusterConfig config = BaseConfig();
    config.reduce_memory_mode = ClusterConfig::ReduceMemoryMode::kStrict;
    config.memory_per_task_bytes = budget;
    return config;
  }

  std::shared_ptr<DfsFile> MakeInput(int rows, const std::string& path) {
    std::vector<Value> data;
    for (int i = 0; i < rows; ++i) data.push_back(Row(i, i % 8));
    auto file = WriteRows(&dfs_, path, data, /*split_bytes=*/256);
    EXPECT_TRUE(file.ok());
    return *file;
  }

  /// Group-by job whose reduce output preserves value arrival order — the
  /// sharpest probe of external-sort equivalence: a different tie order
  /// between runs would reorder the output rows.
  static JobSpec MakeGroupJob(std::shared_ptr<DfsFile> input,
                              const std::string& output) {
    JobSpec spec;
    spec.name = "group";
    spec.output_path = output;
    MapInput mi;
    mi.file = std::move(input);
    mi.map_fn = [](const Value& record, MapContext* ctx) -> Status {
      ctx->Emit(*record.FindField("g"), record);
      return Status::OK();
    };
    spec.inputs = {mi};
    spec.num_reduce_tasks = 2;
    spec.reduce_fn = [](const Value&, const std::vector<Value>& values,
                        ReduceContext* ctx) -> Status {
      for (const Value& v : values) ctx->Output(v);
      return Status::OK();
    };
    return spec;
  }

  Dfs dfs_;
};

TEST_F(MemoryPressureEngineTest, SpillOutputMatchesInMemoryOracle) {
  auto input = MakeInput(400, "/in");

  MapReduceEngine unbounded(&dfs_, BaseConfig());
  auto base = unbounded.Submit(MakeGroupJob(input, "/out_mem"));
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(base->status.ok()) << base->status.ToString();
  EXPECT_EQ(base->reduce_spills, 0);
  EXPECT_EQ(base->spill_bytes_written, 0u);

  MapReduceEngine spilling(&dfs_, SpillConfig(/*budget=*/1024));
  auto spilled = spilling.Submit(MakeGroupJob(input, "/out_spill"));
  ASSERT_TRUE(spilled.ok());
  ASSERT_TRUE(spilled->status.ok()) << spilled->status.ToString();
  EXPECT_GT(spilled->reduce_spills, 0);
  EXPECT_GT(spilled->spill_runs, spilled->reduce_spills)
      << "a spilling task writes more than one run";
  EXPECT_GT(spilled->spill_merge_passes, 0);
  EXPECT_EQ(spilled->spill_bytes_written, spilled->spill_bytes_read)
      << "every merge-pass byte written is read back";
  // A spilling task holds exactly the budget; nothing may hold more.
  EXPECT_EQ(spilled->peak_task_memory_bytes, 1024u);
  EXPECT_GT(base->peak_task_memory_bytes, 1024u)
      << "the in-memory oracle holds its full expanded state";

  // Row-for-row identity in file order: the multi-pass external sort must
  // be indistinguishable from one full in-memory stable sort.
  auto rows_mem = ReadAllRows(*base->output);
  auto rows_spill = ReadAllRows(*spilled->output);
  ASSERT_TRUE(rows_mem.ok());
  ASSERT_TRUE(rows_spill.ok());
  ASSERT_EQ(rows_mem->size(), rows_spill->size());
  for (size_t i = 0; i < rows_mem->size(); ++i) {
    ASSERT_EQ((*rows_mem)[i].Compare((*rows_spill)[i]), 0) << "row " << i;
  }
  EXPECT_EQ(base->counters.output_bytes, spilled->counters.output_bytes);

  // Spill runs are scratch: gone once the job is done.
  EXPECT_FALSE(dfs_.Exists("/out_spill.spill/t0"));
  EXPECT_FALSE(dfs_.Exists("/out_spill.spill/t1"));
}

TEST_F(MemoryPressureEngineTest, SpillAccountingIsPinned) {
  // Fixed input + fixed budget pin the whole spill plan. These exact
  // values are the determinism contract: a change to row encoding, the
  // memory factor, or run planning must show up here as a diff, not drift
  // silently.
  auto input = MakeInput(400, "/in");
  obs::MetricsRegistry metrics;
  obs::TraceSink trace;
  MapReduceEngine engine(&dfs_, SpillConfig(/*budget=*/1024));
  engine.set_metrics(&metrics);
  engine.set_trace(&trace);
  auto result = engine.Submit(MakeGroupJob(input, "/out"));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok()) << result->status.ToString();

  // Two reducers, each with ~2.7 KiB of bucket bytes => ~4 KiB of sort
  // state against a 1 KiB budget: 5 runs apiece, one fan-8 merge pass
  // each, pass I/O of one bucket write + read per task.
  EXPECT_EQ(result->reduce_spills, 2);
  EXPECT_EQ(result->spill_runs, 10);
  EXPECT_EQ(result->spill_merge_passes, 2);
  EXPECT_EQ(result->spill_bytes_written, 5536u);
  EXPECT_EQ(result->spill_bytes_read, 5536u);
  EXPECT_EQ(result->peak_task_memory_bytes, 1024u);
  EXPECT_EQ(result->reduce_tasks_planned, 2);

  EXPECT_EQ(metrics.GetCounter("mr.memory_spilled_tasks")->value(), 2u);
  EXPECT_EQ(metrics.GetCounter("mr.memory_spill_bytes")->value(),
            result->spill_bytes_written + result->spill_bytes_read);

  int task_spill_events = 0;
  const std::string serialized = trace.SerializeJsonl();
  for (size_t pos = serialized.find("\"task_spill\"");
       pos != std::string::npos;
       pos = serialized.find("\"task_spill\"", pos + 1)) {
    ++task_spill_events;
  }
  EXPECT_EQ(task_spill_events, 2);
}

TEST_F(MemoryPressureEngineTest, StrictModeFailsJobWithOutOfMemory) {
  auto input = MakeInput(400, "/in");
  obs::MetricsRegistry metrics;
  MapReduceEngine engine(&dfs_, StrictConfig(/*budget=*/1024));
  engine.set_metrics(&metrics);
  auto result = engine.Submit(MakeGroupJob(input, "/out"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(result->output, nullptr);
  EXPECT_FALSE(dfs_.Exists("/out")) << "failed job output must be cleaned";
  EXPECT_FALSE(dfs_.Exists("/out.spill/t0"));
  EXPECT_EQ(result->reduce_spills, 0);
  // The planned reducer count survives the failure — it seeds the driver
  // ladder's doubled-reducer rung.
  EXPECT_EQ(result->reduce_tasks_planned, 2);
  EXPECT_EQ(metrics.GetCounter("mr.memory_oom_failures")->value(), 1u);
}

TEST_F(MemoryPressureEngineTest, SpillModeFailsWhenRunCapExceeded) {
  auto input = MakeInput(400, "/in");
  ClusterConfig config = SpillConfig(/*budget=*/1024);
  config.max_spill_runs = 2;  // The job needs far more runs than this.
  MapReduceEngine engine(&dfs_, config);
  auto result = engine.Submit(MakeGroupJob(input, "/out"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(result->output, nullptr);
  EXPECT_FALSE(dfs_.Exists("/out"));
}

TEST_F(MemoryPressureEngineTest, PerJobOverrideBeatsClusterMode) {
  // JobSpec::reduce_memory_mode = 1 forces spill on an unbounded cluster —
  // the exact mechanism the driver's ladder rung 1 uses.
  auto input = MakeInput(400, "/in");
  MapReduceEngine engine(&dfs_, BaseConfig());
  ASSERT_EQ(engine.config().reduce_memory_mode,
            ClusterConfig::ReduceMemoryMode::kUnbounded);
  JobSpec spec = MakeGroupJob(input, "/out");
  spec.reduce_memory_mode = 1;  // kSpill, despite the cluster default.
  auto result = engine.Submit(spec);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok()) << result->status.ToString();
  // The default 1 MiB budget is never exceeded at this scale: the override
  // arms the accounting without forcing a spill.
  EXPECT_EQ(result->reduce_spills, 0);
  EXPECT_GT(result->peak_task_memory_bytes, 0u);
}

TEST_F(MemoryPressureEngineTest, ScriptedSpillCorruptionRetriesAndHeals) {
  auto input = MakeInput(400, "/in");

  MapReduceEngine oracle(&dfs_, SpillConfig(/*budget=*/1024));
  auto clean = oracle.Submit(MakeGroupJob(input, "/out_clean"));
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(clean->status.ok());

  ClusterConfig config = SpillConfig(/*budget=*/1024);
  FaultConfig::ScriptedCorruption sc;
  sc.target = FaultConfig::ScriptedCorruption::Target::kSpill;
  sc.job = "group";
  sc.task_id = 0;
  sc.attempt = 1;
  config.faults.scripted_corruptions = {sc};
  MapReduceEngine engine(&dfs_, config);
  auto result = engine.Submit(MakeGroupJob(input, "/out"));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok())
      << "the corrupt read-back must fail only the attempt, not the job: "
      << result->status.ToString();
  EXPECT_GE(result->task_retries, 1);
  // Three spilled attempts: task 0's corrupt first attempt (billed one
  // merge pass), its clean retry, and task 1.
  EXPECT_EQ(result->reduce_spills, 3);
  EXPECT_GT(result->spill_bytes_written, clean->spill_bytes_written)
      << "the failed attempt's discovery pass is billed";

  // Identical rows to the corruption-free spill run.
  auto rows_clean = ReadAllRows(*clean->output);
  auto rows = ReadAllRows(*result->output);
  ASSERT_TRUE(rows_clean.ok());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows_clean->size(), rows->size());
  for (size_t i = 0; i < rows->size(); ++i) {
    ASSERT_EQ((*rows_clean)[i].Compare((*rows)[i]), 0) << "row " << i;
  }
}

TEST_F(MemoryPressureEngineTest, EnvKnobsDriveSpillPath) {
  // The only env-dependent test: DYNO_TASK_MEMORY_BYTES + DYNO_SPILL are
  // pinned (and the fault knobs neutralized) so the ApplyMemoryEnvOverrides
  // path is genuinely exercised, deterministically under any preset.
  ScopedEnv env({{"DYNO_TASK_MEMORY_BYTES", "1024"},
                 {"DYNO_SPILL", "1"},
                 {"DYNO_FAULT_SEED", "7"},
                 {"DYNO_TASK_FAILURE_RATE", "0"},
                 {"DYNO_STRAGGLER_RATE", "0"},
                 {"DYNO_NODE_FAILURE_RATE", "0"},
                 {"DYNO_BLOCK_CORRUPTION_RATE", "0"},
                 {"DYNO_SHUFFLE_CORRUPTION_RATE", "0"},
                 {"DYNO_POISON_RECORD_RATE", "0"}});
  auto input = MakeInput(400, "/in");

  ClusterConfig config = BaseConfig();
  config.faults.use_env_defaults = true;  // Read the pinned knobs above.
  MapReduceEngine engine(&dfs_, config);
  auto result = engine.Submit(MakeGroupJob(input, "/out"));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok()) << result->status.ToString();
  EXPECT_GT(result->reduce_spills, 0)
      << "env knobs must arm the spill path";

  MapReduceEngine oracle(&dfs_, BaseConfig());
  auto base = oracle.Submit(MakeGroupJob(input, "/out_mem"));
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(base->status.ok());
  auto rows = ReadAllRows(*result->output);
  auto rows_mem = ReadAllRows(*base->output);
  ASSERT_TRUE(rows.ok());
  ASSERT_TRUE(rows_mem.ok());
  ASSERT_EQ(rows->size(), rows_mem->size());
  for (size_t i = 0; i < rows->size(); ++i) {
    ASSERT_EQ((*rows)[i].Compare((*rows_mem)[i]), 0) << "row " << i;
  }
}

// ---------------------------------------------------------------------------
// Driver level: the OOM retry ladder, cost-model agreement, and
// spill × crash × resume.
// ---------------------------------------------------------------------------

class MemoryPressureDriverTest : public ::testing::Test {
 protected:
  MemoryPressureDriverTest() : catalog_(&dfs_) {
    TpchConfig config;
    config.scale = 0.0005;
    config.split_bytes = 8 * 1024;
    EXPECT_TRUE(GenerateTpch(&catalog_, config).ok());
  }

  /// Strict reduce memory: any over-budget shuffle kills the job — only
  /// the ladder can save a repartition-heavy query.
  static ClusterConfig StrictConfig(uint64_t budget) {
    ClusterConfig config;
    config.job_startup_ms = 2000;
    config.memory_per_task_bytes = budget;
    config.reduce_memory_mode = ClusterConfig::ReduceMemoryMode::kStrict;
    config.faults.use_env_defaults = false;
    return config;
  }

  /// Repartition-only planning (no broadcast escape hatch), so reduce-side
  /// memory pressure cannot be planned around.
  DynoOptions RepartitionOnlyOptions() {
    DynoOptions options;
    options.pilot.k = 256;
    options.cost.enable_broadcast = false;
    options.cost.enable_broadcast_chains = false;
    return options;
  }

  void ExpectMatchesOracle(const Query& query, const QueryRunReport& report) {
    auto expected = NaiveEvaluateJoinBlock(&catalog_, query.join_block);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    ASSERT_NE(report.result, nullptr);
    std::vector<Value> actual = MustReadAll(*report.result);
    std::vector<Value> want = std::move(expected).value();
    SortRowsForComparison(&actual);
    SortRowsForComparison(&want);
    ASSERT_EQ(actual.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(actual[i].Compare(want[i]), 0) << "row " << i;
    }
  }

  Dfs dfs_;
  Catalog catalog_;
  StatsStore store_;
};

TEST_F(MemoryPressureDriverTest, WithoutLadderStrictOomIsFatal) {
  MapReduceEngine engine(&dfs_, StrictConfig(/*budget=*/8 * 1024));
  DynoOptions options = RepartitionOnlyOptions();
  options.oom_retry_ladder = 0;  // Legacy: OutOfMemory is never retried.
  DynoDriver driver(&engine, &catalog_, &store_, options);
  auto report = driver.Execute(MakeTpchQ10());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kOutOfMemory);
}

TEST_F(MemoryPressureDriverTest, LadderRescuesStrictOomViaSpill) {
  MapReduceEngine engine(&dfs_, StrictConfig(/*budget=*/8 * 1024));
  DynoOptions options = RepartitionOnlyOptions();
  options.oom_retry_ladder = 1;  // Rung 1: re-run in spill mode.
  DynoDriver driver(&engine, &catalog_, &store_, options);
  Query q10 = MakeTpchQ10();
  auto report = driver.Execute(q10);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->oom_retries, 1);
  EXPECT_GT(report->reduce_spills, 0)
      << "the rescued re-run must actually have spilled";
  EXPECT_GT(report->spill_bytes_written, 0u);
  EXPECT_GT(report->peak_task_memory_bytes, 0u);
  ExpectMatchesOracle(q10, *report);
}

TEST_F(MemoryPressureDriverTest, LadderEscalatesToDoubledReducers) {
  // A run cap of 1 makes rung 1 (spill at the planned reducer count) OOM
  // again: only the doubled-reducer rungs — which shrink per-reducer state
  // until it fits the budget outright — can finish the query.
  ClusterConfig config = StrictConfig(/*budget=*/8 * 1024);
  config.max_spill_runs = 1;
  MapReduceEngine engine(&dfs_, config);
  DynoOptions options = RepartitionOnlyOptions();
  options.oom_retry_ladder = 6;
  DynoDriver driver(&engine, &catalog_, &store_, options);
  Query q10 = MakeTpchQ10();
  auto report = driver.Execute(q10);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->oom_retries, 2)
      << "rung 1 alone cannot satisfy a run cap of 1";
  ExpectMatchesOracle(q10, *report);
}

TEST_F(MemoryPressureDriverTest, ExhaustedLadderSurfacesPermanentOom) {
  ClusterConfig config = StrictConfig(/*budget=*/8 * 1024);
  config.max_spill_runs = 1;
  MapReduceEngine engine(&dfs_, config);
  DynoOptions options = RepartitionOnlyOptions();
  options.oom_retry_ladder = 1;  // Spill-only rung, which the cap defeats.
  DynoDriver driver(&engine, &catalog_, &store_, options);
  auto report = driver.Execute(MakeTpchQ10());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kOutOfMemory);
}

TEST_F(MemoryPressureDriverTest, CostSyncPreventsInfeasibleBroadcasts) {
  // Same deliberately-lying options as extensions_test's fallback tests —
  // but with the default sync_cost_memory the driver overwrites the lie
  // with the engine's real 2 KiB budget at construction, so the optimizer
  // never picks a broadcast the engine would kill: zero fallbacks, instead
  // of the >0 the split-brain variant asserts.
  ClusterConfig config;
  config.job_startup_ms = 2000;
  config.memory_per_task_bytes = 2 * 1024;
  config.faults.use_env_defaults = false;
  MapReduceEngine engine(&dfs_, config);
  DynoOptions options;
  options.pilot.k = 256;
  options.cost.max_memory_bytes = 64 * 1024;  // The lie sync overwrites.
  options.cost.estimated_build_margin = 1.0;
  options.adaptive_join_fallback = true;
  DynoDriver driver(&engine, &catalog_, &store_, options);
  EXPECT_EQ(driver.options().cost.max_memory_bytes, 2u * 1024u)
      << "construction must adopt the engine's budget";
  Query q10 = MakeTpchQ10();
  auto report = driver.Execute(q10);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->broadcast_fallbacks, 0)
      << "a synced cost model never needs the runtime fallback";
  ExpectMatchesOracle(q10, *report);
}

TEST_F(MemoryPressureDriverTest, SpillSurvivesDriverCrashAndResume) {
  ClusterConfig config;
  config.job_startup_ms = 2000;
  config.memory_per_task_bytes = 8 * 1024;
  config.reduce_memory_mode = ClusterConfig::ReduceMemoryMode::kSpill;
  config.faults.use_env_defaults = false;
  MapReduceEngine engine(&dfs_, config);

  DynoOptions options = RepartitionOnlyOptions();
  options.checkpoint_path = "/ckpt/mem";
  options.abort_after_jobs = 2;  // Die mid-query, after real spill work.
  DynoDriver crashed(&engine, &catalog_, &store_, options);
  Query q10 = MakeTpchQ10();
  auto first = crashed.Execute(q10);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kCancelled);

  options.abort_after_jobs = -1;
  DynoDriver restarted(&engine, &catalog_, &store_, options);
  auto report = restarted.Resume(q10);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->resumed_steps, 1)
      << "the continuation must reuse checkpointed spill-era steps";
  ExpectMatchesOracle(q10, *report);
}

// ---------------------------------------------------------------------------
// Service level: the cluster memory ledger.
// ---------------------------------------------------------------------------

class MemoryPressureServiceTest : public ::testing::Test {
 protected:
  MemoryPressureServiceTest() : catalog_(&dfs_), engine_(&dfs_, MakeConfig()) {
    TpchConfig config;
    config.scale = 0.0005;
    config.split_bytes = 8 * 1024;
    EXPECT_TRUE(GenerateTpch(&catalog_, config).ok());
    engine_.set_metrics(&metrics_);
  }

  static ClusterConfig MakeConfig() {
    ClusterConfig config;
    config.job_startup_ms = 2000;
    config.map_slots = 20;
    config.reduce_slots = 10;
    config.memory_per_task_bytes = 64 * 1024;
    config.faults.use_env_defaults = false;
    return config;
  }

  QuerySubmission MakeSubmission(const std::string& id, const Query& query,
                                 SimMillis arrival = 0) {
    QuerySubmission sub;
    sub.query_id = id;
    sub.query = query;
    sub.options.pilot.k = 256;
    sub.options.pilot.mode = PilotRunOptions::Mode::kParallel;
    sub.options.cost.max_memory_bytes = MakeConfig().memory_per_task_bytes;
    sub.arrival_offset_ms = arrival;
    return sub;
  }

  uint64_t CounterValue(const std::string& name) {
    return metrics_.GetCounter(name)->value();
  }

  Dfs dfs_;
  Catalog catalog_;
  MapReduceEngine engine_;
  StatsStore store_;
  obs::MetricsRegistry metrics_;
};

TEST_F(MemoryPressureServiceTest, LedgerSerializesOversubscribedAdmissions) {
  QueryServiceOptions opts;
  opts.max_concurrent = 3;  // Slots alone would admit all three at once.
  opts.memory_ledger_bytes = 100 * 1024;
  opts.default_query_memory_bytes = 60 * 1024;  // Two never fit together.
  QueryService service(&engine_, &catalog_, &store_, opts);
  ASSERT_TRUE(service.Enqueue(MakeSubmission("m1", MakeTpchQ2())).ok());
  ASSERT_TRUE(service.Enqueue(MakeSubmission("m2", MakeTpchQ2())).ok());
  ASSERT_TRUE(service.Enqueue(MakeSubmission("m3", MakeTpchQ2())).ok());

  std::vector<QueryOutcome> outcomes = service.RunAll();
  ASSERT_EQ(outcomes.size(), 3u);
  for (const QueryOutcome& o : outcomes) {
    EXPECT_TRUE(o.status.ok()) << o.query_id << ": " << o.status.ToString();
  }
  // The ledger admits one 60 KiB query at a time: strictly staggered
  // admissions despite three free slots at t=0.
  EXPECT_GT(outcomes[1].admit_ms, outcomes[0].admit_ms);
  EXPECT_GT(outcomes[2].admit_ms, outcomes[1].admit_ms);
  EXPECT_GE(CounterValue("service.memory_held_back"), 2u);
  EXPECT_EQ(metrics_.GetGauge("service.memory_reserved_bytes")->value(), 0)
      << "every reservation must be released at finalization";
}

TEST_F(MemoryPressureServiceTest, FirstQueryAlwaysAdmitsEvenOverLedger) {
  // An estimate larger than the whole ledger must not deadlock admission:
  // with nothing reserved, the charge is taken anyway.
  QueryServiceOptions opts;
  opts.max_concurrent = 2;
  opts.memory_ledger_bytes = 10 * 1024;
  QueryService service(&engine_, &catalog_, &store_, opts);
  QuerySubmission huge = MakeSubmission("huge", MakeTpchQ2());
  huge.estimated_memory_bytes = 1 << 30;
  ASSERT_TRUE(service.Enqueue(huge).ok());
  std::vector<QueryOutcome> outcomes = service.RunAll();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].status.ok()) << outcomes[0].status.ToString();
  EXPECT_EQ(outcomes[0].admit_ms, 0);
}

TEST_F(MemoryPressureServiceTest, MemoryPressureTriggersLoadShedding) {
  QueryServiceOptions opts;
  opts.max_concurrent = 2;
  opts.memory_ledger_bytes = 100 * 1024;
  opts.load_shed_pressure = 0.8;  // Ledger 90% promised => overloaded.
  QueryService service(&engine_, &catalog_, &store_, opts);
  QuerySubmission big = MakeSubmission("big", MakeTpchQ10());
  big.estimated_memory_bytes = 90 * 1024;
  big.priority = 1;  // Above the shed ceiling; never itself sheddable.
  QuerySubmission shed_me = MakeSubmission("shed_me", MakeTpchQ2(), 100);
  shed_me.estimated_memory_bytes = 60 * 1024;
  ASSERT_TRUE(service.Enqueue(big).ok());
  ASSERT_TRUE(service.Enqueue(shed_me).ok());

  std::vector<QueryOutcome> outcomes = service.RunAll();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].status.ok()) << outcomes[0].status.ToString();
  EXPECT_EQ(outcomes[1].status.code(), StatusCode::kResourceExhausted)
      << outcomes[1].status.ToString();
  EXPECT_EQ(outcomes[1].admit_ms, -1) << "shed queries never held a slot";
  EXPECT_EQ(CounterValue("service.shed"), 1u);
  EXPECT_GE(CounterValue("service.memory_held_back"), 1u);
}

}  // namespace
}  // namespace dyno
