#include <gtest/gtest.h>

#include "lang/plan.h"
#include "lang/query.h"

namespace dyno {
namespace {

JoinBlock ThreeWayBlock() {
  JoinBlock b;
  b.tables = {{"ta", "a"}, {"tb", "b"}, {"tc", "c"}};
  b.edges = {{"a", "x", "b", "x"}, {"b", "y", "c", "y"}};
  b.predicates = {
      {Eq(Col("p"), LitInt(1)), {"a"}},
      {Eq(Col("q"), LitInt(2)), {"a"}},
      {Gt(Col("r"), LitInt(3)), {"c"}},
      {Eq(Col("s"), Col("t")), {"a", "c"}},
  };
  return b;
}

TEST(QueryTest, ValidateAcceptsWellFormedBlock) {
  EXPECT_TRUE(ValidateJoinBlock(ThreeWayBlock()).ok());
}

TEST(QueryTest, ValidateRejectsBadBlocks) {
  JoinBlock empty;
  EXPECT_FALSE(ValidateJoinBlock(empty).ok());

  JoinBlock dup = ThreeWayBlock();
  dup.tables.push_back({"td", "a"});
  EXPECT_FALSE(ValidateJoinBlock(dup).ok());

  JoinBlock bad_edge = ThreeWayBlock();
  bad_edge.edges.push_back({"a", "x", "zz", "x"});
  EXPECT_FALSE(ValidateJoinBlock(bad_edge).ok());

  JoinBlock self_edge = ThreeWayBlock();
  self_edge.edges.push_back({"a", "x", "a", "y"});
  EXPECT_FALSE(ValidateJoinBlock(self_edge).ok());

  JoinBlock bad_pred = ThreeWayBlock();
  bad_pred.predicates.push_back({Eq(Col("u"), LitInt(1)), {"zz"}});
  EXPECT_FALSE(ValidateJoinBlock(bad_pred).ok());

  JoinBlock null_pred = ThreeWayBlock();
  null_pred.predicates.push_back({nullptr, {"a"}});
  EXPECT_FALSE(ValidateJoinBlock(null_pred).ok());
}

TEST(QueryTest, ExtractLeafExprsPushesDownLocals) {
  std::vector<Predicate> non_local;
  std::vector<LeafExpr> leaves = ExtractLeafExprs(ThreeWayBlock(), &non_local);
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_EQ(leaves[0].alias, "a");
  ASSERT_NE(leaves[0].filter, nullptr);
  EXPECT_EQ(leaves[0].filter->ToString(), "((p = 1) AND (q = 2))");
  EXPECT_EQ(leaves[1].filter, nullptr);
  ASSERT_NE(leaves[2].filter, nullptr);
  ASSERT_EQ(non_local.size(), 1u);
  EXPECT_EQ(non_local[0].aliases.size(), 2u);
}

TEST(QueryTest, LeafJoinColumns) {
  std::vector<LeafExpr> leaves = ExtractLeafExprs(ThreeWayBlock(), nullptr);
  EXPECT_EQ(leaves[0].join_columns, std::vector<std::string>{"x"});
  EXPECT_EQ(leaves[1].join_columns, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(leaves[2].join_columns, std::vector<std::string>{"y"});
}

TEST(QueryTest, LeafSignatureIncludesTableAndFilter) {
  std::vector<LeafExpr> leaves = ExtractLeafExprs(ThreeWayBlock(), nullptr);
  EXPECT_EQ(LeafSignature(leaves[0]), "ta|((p = 1) AND (q = 2))");
  EXPECT_EQ(LeafSignature(leaves[1]), "tb|");
}

TEST(QueryTest, ConnectivityDetection) {
  JoinBlock b = ThreeWayBlock();
  EXPECT_TRUE(IsJoinGraphConnected(b));
  b.edges.pop_back();  // drop b-c edge
  EXPECT_FALSE(IsJoinGraphConnected(b));
  JoinBlock single;
  single.tables = {{"t", "t"}};
  EXPECT_TRUE(IsJoinGraphConnected(single));
}

// --- PlanNode ---

std::unique_ptr<PlanNode> SamplePlan() {
  auto j1 = PlanNode::Join(JoinMethod::kBroadcast, PlanNode::Leaf("a"),
                           PlanNode::Leaf("b"), {{"x", "x"}});
  auto j2 = PlanNode::Join(JoinMethod::kRepartition, std::move(j1),
                           PlanNode::Leaf("c"), {{"y", "y"}});
  return j2;
}

TEST(PlanTest, ToStringRendersMethods) {
  EXPECT_EQ(SamplePlan()->ToString(), "((a *b b) *r c)");
}

TEST(PlanTest, CloneIsDeepAndEqual) {
  auto plan = SamplePlan();
  plan->est_rows = 123;
  plan->left->chain_with_left = false;
  auto clone = plan->Clone();
  EXPECT_TRUE(plan->StructurallyEquals(*clone));
  EXPECT_DOUBLE_EQ(clone->est_rows, 123.0);
  clone->left->relation_id = "zzz";  // mutate the clone only
  EXPECT_EQ(plan->left->left->relation_id, "a");
}

TEST(PlanTest, StructuralEqualityDistinguishesMethodAndShape) {
  auto a = SamplePlan();
  auto b = SamplePlan();
  EXPECT_TRUE(a->StructurallyEquals(*b));
  b->method = JoinMethod::kBroadcast;
  EXPECT_FALSE(a->StructurallyEquals(*b));
  auto c = SamplePlan();
  c->left->key_pairs = {{"x", "z"}};
  EXPECT_FALSE(a->StructurallyEquals(*c));
}

TEST(PlanTest, CollectLeafIdsAndNumJoins) {
  auto plan = SamplePlan();
  std::vector<std::string> leaves;
  plan->CollectLeafIds(&leaves);
  EXPECT_EQ(leaves, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(plan->NumJoins(), 2);
  EXPECT_EQ(PlanNode::Leaf("x")->NumJoins(), 0);
}

TEST(PlanTest, TreeStringShowsChainAndFilter) {
  auto plan = SamplePlan();
  plan->post_filter = Eq(Col("u"), LitInt(9));
  plan->left->chain_with_left = false;
  std::string tree = plan->ToTreeString();
  EXPECT_NE(tree.find("JOIN[repartition]"), std::string::npos);
  EXPECT_NE(tree.find("JOIN[broadcast]"), std::string::npos);
  EXPECT_NE(tree.find("filter="), std::string::npos);
}

}  // namespace
}  // namespace dyno
