#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/random.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/string_util.h"

namespace dyno {
namespace {

// --- Status / Result ---

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::NotFound("thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "thing");
  EXPECT_EQ(s.ToString(), "NotFound: thing");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfMemory,
        StatusCode::kFailedPrecondition, StatusCode::kUnimplemented,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseResult(int x, int* out) {
  DYNO_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  DYNO_RETURN_IF_ERROR(Status::OK());
  *out = v * 2;
  return Status::OK();
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 5);
  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  int out = 0;
  EXPECT_TRUE(UseResult(3, &out).ok());
  EXPECT_EQ(out, 6);
  EXPECT_FALSE(UseResult(-3, &out).ok());
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// --- Rng ---

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  Rng c(43);
  bool all_equal = true;
  bool any_diff_seed_diff = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t x = a.Next();
    if (x != b.Next()) all_equal = false;
    if (x != c.Next()) any_diff_seed_diff = true;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed_diff);
}

TEST(RngTest, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliMean) {
  Rng rng(7);
  int heads = 0;
  for (int i = 0; i < 20000; ++i) heads += rng.Bernoulli(0.3);
  EXPECT_NEAR(heads / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ZipfSkewsTowardsSmallValues) {
  Rng rng(9);
  int small = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Zipf(1000, 0.9) < 10) ++small;
  }
  EXPECT_GT(small, 3000) << "theta=0.9 concentrates mass on the head";
  // theta=0 degenerates to uniform.
  small = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Zipf(1000, 0.0) < 10) ++small;
  }
  EXPECT_LT(small, 300);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(11);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (uint64_t v : sample) EXPECT_LT(v, 100u);
  // k >= n returns a permutation.
  auto all = rng.SampleWithoutReplacement(10, 50);
  EXPECT_EQ(all.size(), 10u);
  std::set<uint64_t> perm(all.begin(), all.end());
  EXPECT_EQ(perm.size(), 10u);
}

TEST(RngTest, SamplingIsUnbiased) {
  // Each index should appear in the sample with probability k/n.
  int counts[20] = {0};
  for (uint64_t seed = 0; seed < 500; ++seed) {
    Rng rng(seed);
    for (uint64_t idx : rng.SampleWithoutReplacement(20, 5)) ++counts[idx];
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_NEAR(counts[i] / 500.0, 0.25, 0.08) << "index " << i;
  }
}

// --- hashing ---

TEST(HashTest, StableAndSeedSensitive) {
  EXPECT_EQ(HashBytes("hello", 1), HashBytes("hello", 1));
  EXPECT_NE(HashBytes("hello", 1), HashBytes("hello", 2));
  EXPECT_NE(HashBytes("hello", 1), HashBytes("hellp", 1));
}

TEST(HashTest, Mix64Avalanches) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    uint64_t a = Mix64(12345);
    uint64_t b = Mix64(12345 ^ (1ULL << bit));
    total_flips += __builtin_popcountll(a ^ b);
  }
  double avg = total_flips / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

// --- strings / time ---

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, SplitAndJoin) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), std::vector<std::string>{""});
  EXPECT_EQ(StrJoin({"a", "b", "c"}, "::"), "a::b::c");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("/tmp/dyno/x", "/tmp/"));
  EXPECT_FALSE(StartsWith("/tm", "/tmp/"));
}

TEST(StringUtilTest, ParseInt64IsStrict) {
  EXPECT_EQ(*ParseInt64("0"), 0);
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_EQ(*ParseInt64("9223372036854775807"), INT64_MAX);
  // Whole-string parses only: junk, whitespace, floats and overflow are
  // all InvalidArgument, never a silent partial parse.
  for (const char* bad :
       {"", " 5", "5 ", "5x", "x5", "1.5", "1e3", "0x10", "--1", "+ 1",
        "99999999999999999999", "-99999999999999999999"}) {
    auto parsed = ParseInt64(bad);
    EXPECT_FALSE(parsed.ok()) << "\"" << bad << "\" parsed as " << *parsed;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(StringUtilTest, ParseDoubleIsStrict) {
  EXPECT_EQ(*ParseDouble("0.5"), 0.5);
  EXPECT_EQ(*ParseDouble("-2"), -2.0);
  EXPECT_EQ(*ParseDouble("1e3"), 1000.0);
  for (const char* bad :
       {"", " 0.5", "0.5 ", "0.5x", "x", "inf", "-inf", "nan", "1e999",
        "0..5"}) {
    auto parsed = ParseDouble(bad);
    EXPECT_FALSE(parsed.ok()) << "\"" << bad << "\" parsed as " << *parsed;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(StringUtilDeathTest, MalformedEnvKnobsAbortLoudly) {
  // A mistyped DYNO_* knob must kill the process with a message naming the
  // knob — silently falling back to a default would invalidate whole
  // benchmark or fault campaigns (DESIGN.md §6.5).
  EXPECT_EQ(EnvInt64OrDie("DYNO_TEST_KNOB", "7", 0, 10), 7);
  EXPECT_EQ(EnvDoubleOrDie("DYNO_TEST_KNOB", "0.25", 0.0, 1.0), 0.25);
  EXPECT_DEATH(EnvInt64OrDie("DYNO_TEST_KNOB", "7x", 0, 10),
               "DYNO_TEST_KNOB");
  EXPECT_DEATH(EnvInt64OrDie("DYNO_TEST_KNOB", "50", 0, 10),
               "not an integer in");
  EXPECT_DEATH(EnvDoubleOrDie("DYNO_TEST_KNOB", "abc", 0.0, 1.0),
               "DYNO_TEST_KNOB");
  EXPECT_DEATH(EnvDoubleOrDie("DYNO_TEST_KNOB", "2.5", 0.0, 1.0),
               "not a number in");
}

TEST(SimTimeTest, Formatting) {
  EXPECT_EQ(FormatSimMillis(500), "500 ms");
  EXPECT_EQ(FormatSimMillis(12345), "12.345 s");
}

}  // namespace
}  // namespace dyno
