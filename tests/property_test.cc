// Property-based end-to-end tests: random schemas, data distributions,
// join graphs, predicates and cluster configurations, with every execution
// path (DYNOPT under each strategy, DYNOPT-SIMPLE, RELOPT, the Jaql static
// plans) checked row-for-row against the brute-force oracle. One seed = one
// random scenario; the suite sweeps many seeds.

#include <set>

#include <gtest/gtest.h>

#include "baselines/best_static.h"
#include "baselines/relopt.h"
#include "common/random.h"
#include "common/string_util.h"
#include "dyno/driver.h"
#include "test_util.h"
#include "tpch/queries.h"

namespace dyno {
namespace {

/// A randomly generated scenario: tables + a connected join block.
struct RandomScenario {
  std::vector<std::string> tables;
  JoinBlock block;
};

/// Generates `num_tables` tables with one shared joinable column per edge
/// of a random spanning tree, plus random local/non-local predicates.
RandomScenario GenerateScenario(Catalog* catalog, uint64_t seed) {
  Rng rng(seed);
  RandomScenario scenario;
  int num_tables = 3 + static_cast<int>(rng.Uniform(3));  // 3..5

  // Column naming: table i has key column "k<i>" (its id) and, for each
  // edge to an earlier table j, a foreign key "k<j>" into it. All tables
  // carry a filterable int column "f<i>" and a payload.
  std::vector<int> parent(num_tables, -1);
  std::vector<uint64_t> rows(num_tables);
  for (int i = 0; i < num_tables; ++i) {
    rows[i] = 40 + rng.Uniform(300);
    if (i > 0) parent[i] = static_cast<int>(rng.Uniform(i));
  }

  for (int i = 0; i < num_tables; ++i) {
    std::string table = StrFormat("rt%llu_%d", (unsigned long long)seed, i);
    std::vector<Value> data;
    for (uint64_t r = 0; r < rows[i]; ++r) {
      StructFields fields;
      fields.emplace_back(StrFormat("k%d", i),
                          Value::Int(static_cast<int64_t>(r)));
      if (parent[i] >= 0) {
        // Zipf-skewed foreign key so some keys are hot.
        fields.emplace_back(
            StrFormat("k%d", parent[i]),
            Value::Int(static_cast<int64_t>(
                rng.Zipf(rows[parent[i]], rng.Bernoulli(0.5) ? 0.8 : 0.0))));
      }
      fields.emplace_back(StrFormat("f%d", i),
                          Value::Int(rng.UniformInt(0, 9)));
      fields.emplace_back(StrFormat("p%d", i),
                          Value::String(std::string(1 + rng.Uniform(20),
                                                    'x')));
      data.push_back(MakeRow(std::move(fields)));
    }
    EXPECT_TRUE(catalog->CreateTable(table, data).ok());
    scenario.tables.push_back(table);
    scenario.block.tables.push_back(
        {table, StrFormat("a%d", i)});
  }

  for (int i = 1; i < num_tables; ++i) {
    std::string col = StrFormat("k%d", parent[i]);
    scenario.block.edges.push_back(
        {StrFormat("a%d", i), col, StrFormat("a%d", parent[i]), col});
  }

  // Random local predicates.
  for (int i = 0; i < num_tables; ++i) {
    double dice = rng.NextDouble();
    if (dice < 0.3) {
      scenario.block.predicates.push_back(
          {Le(Col(StrFormat("f%d", i)),
              LitInt(rng.UniformInt(0, 9))),
           {StrFormat("a%d", i)}});
    } else if (dice < 0.5) {
      scenario.block.predicates.push_back(
          {MakeHashFilterUdf(StrFormat("udf%llu_%d",
                                       (unsigned long long)seed, i),
                             {StrFormat("k%d", i)},
                             0.1 + rng.NextDouble() * 0.8, 20.0),
           {StrFormat("a%d", i)}});
    }
  }
  // Occasionally a non-local UDF over an edge's two endpoints.
  if (num_tables >= 2 && rng.Bernoulli(0.5)) {
    int child = 1 + static_cast<int>(rng.Uniform(num_tables - 1));
    scenario.block.predicates.push_back(
        {MakeHashFilterUdf(StrFormat("nl%llu", (unsigned long long)seed),
                           {StrFormat("k%d", child),
                            StrFormat("f%d", parent[child])},
                           0.3 + rng.NextDouble() * 0.5, 30.0),
         {StrFormat("a%d", child), StrFormat("a%d", parent[child])}});
  }
  // Random projection half the time.
  if (rng.Bernoulli(0.5)) {
    for (int i = 0; i < num_tables; ++i) {
      if (rng.Bernoulli(0.6)) {
        scenario.block.output_columns.push_back(StrFormat("k%d", i));
      }
    }
    if (scenario.block.output_columns.empty()) {
      scenario.block.output_columns.push_back("k0");
    }
  }
  return scenario;
}

void ExpectSameRows(const std::shared_ptr<DfsFile>& output,
                    std::vector<Value> expected, const std::string& what) {
  ASSERT_NE(output, nullptr) << what;
  std::vector<Value> actual = MustReadAll(*output);
  SortRowsForComparison(&actual);
  SortRowsForComparison(&expected);
  ASSERT_EQ(actual.size(), expected.size()) << what;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual[i].Compare(expected[i]), 0)
        << what << " row " << i << ": " << actual[i].ToString() << " vs "
        << expected[i].ToString();
  }
}

class RandomQueryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomQueryTest, AllExecutionPathsMatchOracle) {
  uint64_t seed = GetParam();
  Dfs dfs;
  Catalog catalog(&dfs);
  Rng rng(seed ^ 0xabcdef);
  ClusterConfig cluster;
  cluster.job_startup_ms = 500 + rng.Uniform(3000);
  cluster.map_slots = 4 + static_cast<int>(rng.Uniform(60));
  cluster.reduce_slots = 2 + static_cast<int>(rng.Uniform(30));
  // Sometimes tight memory, to exercise repartition paths and fallbacks.
  cluster.memory_per_task_bytes = rng.Bernoulli(0.4)
                                      ? 4 * 1024
                                      : 128 * 1024;
  MapReduceEngine engine(&dfs, cluster);

  RandomScenario scenario = GenerateScenario(&catalog, seed);
  ASSERT_TRUE(ValidateJoinBlock(scenario.block).ok());
  auto oracle = NaiveEvaluateJoinBlock(&catalog, scenario.block);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  Query query;
  query.join_block = scenario.block;

  // DYNOPT with a random strategy.
  ExecutionStrategy strategies[] = {
      ExecutionStrategy::kUncertain1, ExecutionStrategy::kUncertain2,
      ExecutionStrategy::kCheapest1, ExecutionStrategy::kCheapest2,
      ExecutionStrategy::kSimpleParallel, ExecutionStrategy::kSimpleSerial};
  DynoOptions options;
  options.pilot.k = 64 + static_cast<int>(rng.Uniform(512));
  options.cost.max_memory_bytes = cluster.memory_per_task_bytes;
  options.strategy = strategies[rng.Uniform(6)];
  options.reopt_row_error_threshold =
      rng.Bernoulli(0.3) ? rng.NextDouble() : 0.0;
  StatsStore store;
  DynoDriver driver(&engine, &catalog, &store, options);
  auto report = driver.Execute(query);
  ASSERT_TRUE(report.ok()) << "DYNOPT(" << ExecutionStrategyName(
                                  options.strategy)
                           << "): " << report.status().ToString();
  ExpectSameRows(report->result, *oracle,
                 std::string("DYNOPT-") +
                     ExecutionStrategyName(options.strategy));

  // RELOPT.
  CostModelParams cost;
  cost.max_memory_bytes = cluster.memory_per_task_bytes;
  RelOptBaseline relopt(&engine, &catalog, cost);
  auto rel = relopt.PlanAndExecute(scenario.block, ExecOptions());
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  if (rel->exec_status.ok()) {  // static plans may legitimately OOM
    ExpectSameRows(rel->output, *oracle, "RELOPT");
  }

  // Jaql static plan for the declaration order (when connectivity allows).
  BestStaticOptions static_options;
  static_options.cost = cost;
  static_options.execute_top_k = 1;
  BestStaticBaseline best_static(&engine, &catalog, static_options);
  auto stat = best_static.Run(scenario.block);
  if (stat.ok()) {
    ExpectSameRows(stat->output, *oracle, "BESTSTATIC");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace dyno
