// Node-level fault domains (DESIGN.md §6.4) and driver-level recovery.
//
// Engine side: a node crash kills the attempts running on it, invalidates
// the completed map outputs resident there, forces dependent reducers
// through a shuffle re-fetch, and — because re-executed work is committed
// through the same deferred-staging path as first-run work — leaves every
// job output byte-identical to a fault-free run. Losing every node for
// good classifies unfinished jobs as permanent (Unavailable) failures.
//
// Driver side: every successfully accounted step is checkpointed to a DFS
// manifest; a driver killed mid-query resumes from it with the same final
// rows and the same checkpointed statistics as an uninterrupted run.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dyno/checkpoint.h"
#include "dyno/driver.h"
#include "mr/engine.h"
#include "stats/stats_store.h"
#include "storage/catalog.h"
#include "storage/dfs.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace dyno {
namespace {

// ---------------------------------------------------------------------------
// Engine: node crashes.
// ---------------------------------------------------------------------------

Value Row(int64_t id) {
  return MakeRow({{"id", Value::Int(id)},
                  {"g", Value::Int(id % 13)},
                  {"pad", Value::String(std::string(24, 'p'))}});
}

std::shared_ptr<DfsFile> MakeInput(Dfs* dfs, int rows,
                                   const std::string& path) {
  std::vector<Value> data;
  for (int i = 0; i < rows; ++i) data.push_back(Row(i));
  auto file = WriteRows(dfs, path, data, /*target_split_bytes=*/256);
  EXPECT_TRUE(file.ok());
  return *file;
}

ClusterConfig NodeConfig() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.map_slots = 8;
  config.reduce_slots = 4;
  config.job_startup_ms = 200;
  config.faults.use_env_defaults = false;
  config.faults.retry_backoff_ms = 100;
  config.faults.node_recovery_ms = 5000;
  return config;
}

/// Simulated time `num/den` of the way through the clean run's *task*
/// window (everything before job_startup_ms is pure setup — a crash there
/// finds nothing to kill).
SimMillis CrashAt(const ClusterConfig& config, const JobResult& clean,
                  int num, int den) {
  SimMillis window = clean.Elapsed() - config.job_startup_ms;
  return clean.submit_time_ms + config.job_startup_ms + window * num / den;
}

JobSpec CountByGroup(std::shared_ptr<DfsFile> input,
                     const std::string& out_path, int num_reduce_tasks = 0) {
  JobSpec spec;
  spec.name = "count-by-group:" + out_path;
  spec.output_path = out_path;
  spec.num_reduce_tasks = num_reduce_tasks;
  MapInput mi;
  mi.file = std::move(input);
  mi.map_fn = [](const Value& record, MapContext* ctx) -> Status {
    ctx->Emit(*record.FindField("g"), Value::Int(1));
    return Status::OK();
  };
  spec.inputs = {std::move(mi)};
  spec.reduce_fn = [](const Value& key, const std::vector<Value>& values,
                      ReduceContext* ctx) -> Status {
    ctx->Output(MakeRow(
        {{"g", key},
         {"n", Value::Int(static_cast<int64_t>(values.size()))}}));
    return Status::OK();
  };
  return spec;
}

std::string FileBytes(const DfsFile& file) {
  std::string all;
  for (const Split& split : file.splits()) all += split.data;
  return all;
}

/// Runs CountByGroup on a fresh cluster and returns the JobResult.
JobResult RunCountJob(const ClusterConfig& config, int rows = 3000) {
  Dfs dfs;
  MapReduceEngine engine(&dfs, config);
  auto input = MakeInput(&dfs, rows, "/in");
  auto result = engine.Submit(CountByGroup(input, "/out", /*reduce_tasks=*/6));
  EXPECT_TRUE(result.ok());
  return std::move(*result);
}

TEST(NodeFaultTest, CrashLosingCompletedMapOutputsYieldsByteIdenticalOutput) {
  ClusterConfig config = NodeConfig();
  JobResult clean = RunCountJob(config);
  ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();

  // Crash node 0 while the map phase is underway: completed map outputs
  // resident there are lost and must re-execute on the surviving nodes.
  ClusterConfig crashy = config;
  crashy.faults.scripted_node_crashes = {{CrashAt(config, clean, 2, 5), 0}};
  JobResult faulty = RunCountJob(crashy);
  ASSERT_TRUE(faulty.status.ok()) << faulty.status.ToString();

  EXPECT_EQ(faulty.node_crashes_observed, 1);
  EXPECT_GT(faulty.maps_invalidated, 0)
      << "the crash must land after some maps completed on node 0";
  // Recovery costs time but changes nothing observable about the output.
  EXPECT_GT(faulty.Elapsed(), clean.Elapsed());
  EXPECT_EQ(faulty.counters.map_input_records, clean.counters.map_input_records);
  EXPECT_EQ(faulty.counters.map_output_records,
            clean.counters.map_output_records);
  EXPECT_EQ(faulty.counters.output_records, clean.counters.output_records);
  ASSERT_NE(faulty.output, nullptr);
  EXPECT_EQ(FileBytes(*faulty.output), FileBytes(*clean.output))
      << "re-executed maps must reproduce the output byte for byte";
}

TEST(NodeFaultTest, CrashDuringReducePhaseForcesShuffleRefetch) {
  ClusterConfig config = NodeConfig();
  config.reduce_slots = 2;  // several reduce waves -> pending reducers
  JobResult clean = RunCountJob(config);
  ASSERT_TRUE(clean.status.ok());

  // The reduce phase is a narrow late slice of the run; sweep crash
  // placements toward the end until one lands on it. Every placement —
  // whether it hits map tail or reduce waves — must leave the output
  // byte-identical; at least one must catch reducers still pending.
  bool hit_reduce_phase = false;
  for (int pct : {98, 96, 94, 92, 90, 85, 80, 75}) {
    ClusterConfig crashy = config;
    crashy.faults.scripted_node_crashes = {{CrashAt(config, clean, pct, 100), 1}};
    JobResult faulty = RunCountJob(crashy);
    ASSERT_TRUE(faulty.status.ok())
        << "crash at " << pct << "%: " << faulty.status.ToString();
    EXPECT_EQ(faulty.node_crashes_observed, 1);
    EXPECT_EQ(faulty.counters.output_records, clean.counters.output_records);
    ASSERT_NE(faulty.output, nullptr);
    EXPECT_EQ(FileBytes(*faulty.output), FileBytes(*clean.output))
        << "crash at " << pct << "%";
    if (faulty.shuffle_fetch_retries > 0 && faulty.maps_invalidated > 0) {
      hit_reduce_phase = true;
      break;
    }
  }
  EXPECT_TRUE(hit_reduce_phase)
      << "no placement caught pending reducers behind a re-shuffle";
}

TEST(NodeFaultTest, LosingEveryNodeForGoodIsAPermanentUnavailableFailure) {
  ClusterConfig config = NodeConfig();
  config.num_nodes = 2;
  config.faults.node_recovery_ms = 0;  // down for good
  config.faults.scripted_node_crashes = {{300, 0}, {350, 1}};

  Dfs dfs;
  MapReduceEngine engine(&dfs, config);
  auto input = MakeInput(&dfs, 3000, "/in");
  auto result = engine.Submit(CountByGroup(input, "/out"));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->status.ok());
  EXPECT_EQ(result->status.code(), StatusCode::kUnavailable)
      << result->status.ToString();
  EXPECT_EQ(result->output, nullptr);
  EXPECT_FALSE(dfs.Open("/out").ok()) << "failed job must drain its output";
  for (const auto& node : engine.node_states()) EXPECT_FALSE(node.alive);

  // set_config re-provisions the fleet; the engine is usable again.
  engine.set_config(NodeConfig());
  auto again = engine.Submit(CountByGroup(input, "/out2"));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->status.ok()) << again->status.ToString();
  EXPECT_EQ(again->counters.map_input_records, 3000u);
}

TEST(NodeFaultTest, CrashedNodeRecoversAndRejoinsTheCluster) {
  ClusterConfig config = NodeConfig();
  config.faults.node_recovery_ms = 300;

  Dfs dfs;
  MapReduceEngine engine(&dfs, config);
  auto input = MakeInput(&dfs, 3000, "/in");

  ClusterConfig crashy = config;
  crashy.faults.scripted_node_crashes = {{400, 2}};
  engine.set_config(crashy);
  auto result = engine.Submit(CountByGroup(input, "/out", 6));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok()) << result->status.ToString();
  EXPECT_EQ(result->node_crashes_observed, 1);

  // The node either recovered during the run or is revived by the next
  // submission's liveness sweep; either way capacity is whole again.
  auto second = engine.Submit(CountByGroup(input, "/out2", 6));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->status.ok());
  for (const auto& node : engine.node_states()) EXPECT_TRUE(node.alive);
}

TEST(NodeFaultTest, RandomNodeCrashesAreTransparentToJobOutput) {
  ClusterConfig config = NodeConfig();
  JobResult clean = RunCountJob(config);
  ASSERT_TRUE(clean.status.ok());

  ClusterConfig crashy = config;
  crashy.faults.seed = 17;
  crashy.faults.node_failure_rate = 0.01;
  crashy.faults.node_recovery_ms = 400;  // rejoin quickly: slow, not doomed
  JobResult faulty = RunCountJob(crashy);
  ASSERT_TRUE(faulty.status.ok()) << faulty.status.ToString();

  EXPECT_GT(faulty.node_crashes_observed, 0)
      << "the Bernoulli node-crash stream must fire at this rate";
  EXPECT_GT(faulty.attempts_killed_by_node, 0);
  ASSERT_NE(faulty.output, nullptr);
  EXPECT_EQ(FileBytes(*faulty.output), FileBytes(*clean.output));
}

// ---------------------------------------------------------------------------
// Driver: checkpoint manifest + resume.
// ---------------------------------------------------------------------------

TableStats SampleStats(double card) {
  TableStats stats;
  stats.cardinality = card;
  stats.avg_record_size = 33.5;
  stats.from_sample = true;
  ColumnStats cs;
  cs.ndv = card / 2;
  cs.min_value = Value::Int(1);
  cs.max_value = Value::String("zz");
  stats.columns["k"] = cs;
  ColumnStats open;
  open.ndv = 3.0;  // no min/max tracked
  stats.columns["g"] = open;
  return stats;
}

TEST(CheckpointManifestTest, RoundTripsThroughDfs) {
  CheckpointManifest manifest;
  manifest.temp_counter = 7;
  CheckpointEntry entry;
  entry.signature = "join(a,b)";
  entry.relation_id = "t3";
  entry.path = "/tmp/dyno/e1_t3";
  entry.covered = {"a", "b"};
  entry.stats = SampleStats(120.0);
  manifest.entries.push_back(entry);

  Dfs dfs;
  ASSERT_TRUE(manifest.WriteTo(&dfs, "/ckpt").ok());
  // Rewriting (the per-step update pattern) must replace, not fail.
  manifest.temp_counter = 9;
  ASSERT_TRUE(manifest.WriteTo(&dfs, "/ckpt").ok());

  auto loaded = CheckpointManifest::ReadFrom(dfs, "/ckpt");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->temp_counter, 9);
  ASSERT_EQ(loaded->entries.size(), 1u);
  const CheckpointEntry& got = loaded->entries[0];
  EXPECT_EQ(got.signature, entry.signature);
  EXPECT_EQ(got.relation_id, entry.relation_id);
  EXPECT_EQ(got.path, entry.path);
  EXPECT_EQ(got.covered, entry.covered);
  EXPECT_EQ(got.stats.cardinality, entry.stats.cardinality);
  EXPECT_EQ(got.stats.avg_record_size, entry.stats.avg_record_size);
  EXPECT_EQ(got.stats.from_sample, entry.stats.from_sample);
  ASSERT_EQ(got.stats.columns.size(), 2u);
  const ColumnStats& k = got.stats.columns.at("k");
  EXPECT_EQ(k.ndv, 60.0);
  ASSERT_TRUE(k.min_value.has_value());
  EXPECT_EQ(k.min_value->int_value(), 1);
  ASSERT_TRUE(k.max_value.has_value());
  EXPECT_EQ(k.max_value->string_value(), "zz");
  const ColumnStats& g = got.stats.columns.at("g");
  EXPECT_FALSE(g.min_value.has_value());
  EXPECT_FALSE(g.max_value.has_value());
}

TEST(CheckpointManifestTest, MalformedManifestsAreRejectedNotTrusted) {
  Dfs dfs;
  EXPECT_FALSE(CheckpointManifest::ReadFrom(dfs, "/missing").ok());

  // Not a struct.
  ASSERT_TRUE(WriteRows(&dfs, "/bad1", {Value::Int(5)}).ok());
  EXPECT_FALSE(CheckpointManifest::ReadFrom(dfs, "/bad1").ok());

  // Wrong version.
  ASSERT_TRUE(WriteRows(&dfs, "/bad2",
                        {Value::Struct({{"version", Value::Int(99)},
                                        {"temp_counter", Value::Int(0)},
                                        {"entries", Value::Array({})}})})
                  .ok());
  EXPECT_FALSE(CheckpointManifest::ReadFrom(dfs, "/bad2").ok());

  // Entry with a missing field.
  ASSERT_TRUE(
      WriteRows(&dfs, "/bad3",
                {Value::Struct(
                    {{"version", Value::Int(CheckpointManifest::kVersion)},
                     {"temp_counter", Value::Int(2)},
                     {"entries",
                      Value::Array({Value::Struct(
                          {{"signature", Value::String("s")}})})}})})
          .ok());
  EXPECT_FALSE(CheckpointManifest::ReadFrom(dfs, "/bad3").ok());

  // Two rows where one is expected.
  ASSERT_TRUE(
      WriteRows(&dfs, "/bad4", {Value::Int(1), Value::Int(2)}).ok());
  EXPECT_FALSE(CheckpointManifest::ReadFrom(dfs, "/bad4").ok());
}

class DriverRecoveryTest : public ::testing::Test {
 protected:
  static ClusterConfig MakeConfig() {
    ClusterConfig config;
    config.job_startup_ms = 2000;
    config.map_slots = 20;
    config.reduce_slots = 10;
    config.memory_per_task_bytes = 64 * 1024;
    config.faults.use_env_defaults = false;
    return config;
  }

  static DynoOptions MakeOptions() {
    DynoOptions options;
    options.pilot.k = 256;
    options.pilot.mode = PilotRunOptions::Mode::kParallel;
    options.cost.max_memory_bytes = MakeConfig().memory_per_task_bytes;
    options.cost.memory_factor = 1.5;
    options.checkpoint_path = "/ckpt/query";
    return options;
  }

  /// One isolated cluster + TPC-H catalog (a fresh "site" per run, so a
  /// killed run and an uninterrupted run cannot share hidden state).
  struct Site {
    Dfs dfs;
    Catalog catalog{&dfs};
    MapReduceEngine engine{&dfs, MakeConfig()};
    Site() {
      TpchConfig config;
      config.scale = 0.0005;
      config.split_bytes = 8 * 1024;
      EXPECT_TRUE(GenerateTpch(&catalog, config).ok());
    }
  };

  struct Outcome {
    std::string result_bytes;
    uint64_t result_records = 0;
    int jobs_run = 0;
    /// (signature, cardinality) per checkpoint entry, in manifest order.
    std::vector<std::pair<std::string, double>> checkpoints;
  };

  static Outcome Digest(const DynoDriver& driver,
                        const QueryRunReport& report) {
    Outcome out;
    if (report.result != nullptr) {
      out.result_bytes = FileBytes(*report.result);
    }
    out.result_records = report.result_records;
    out.jobs_run = report.jobs_run;
    for (const CheckpointEntry& entry : driver.manifest().entries) {
      out.checkpoints.emplace_back(entry.signature, entry.stats.cardinality);
    }
    return out;
  }
};

TEST_F(DriverRecoveryTest, ResumeAfterMidQueryKillMatchesUninterruptedRun) {
  Query query = MakeTpchQ10();

  // Reference: the same query, never interrupted.
  Site ref_site;
  StatsStore ref_store;
  DynoDriver ref_driver(&ref_site.engine, &ref_site.catalog, &ref_store,
                        MakeOptions());
  auto ref_report = ref_driver.Execute(query);
  ASSERT_TRUE(ref_report.ok()) << ref_report.status().ToString();
  Outcome reference = Digest(ref_driver, *ref_report);
  ASSERT_GT(reference.jobs_run, 1) << "need a multi-job query to kill";
  ASSERT_FALSE(reference.checkpoints.empty());

  // Kill the driver after its first accounted step...
  Site site;
  StatsStore killed_store;
  DynoOptions kill_options = MakeOptions();
  kill_options.abort_after_jobs = 1;
  DynoDriver killed(&site.engine, &site.catalog, &killed_store, kill_options);
  auto killed_report = killed.Execute(query);
  ASSERT_FALSE(killed_report.ok());
  EXPECT_EQ(killed_report.status().code(), StatusCode::kCancelled)
      << killed_report.status().ToString();

  // ...and resume with a brand-new driver and a brand-new stats store (the
  // old process is dead; only the DFS — checkpoints included — survives).
  StatsStore resumed_store;
  DynoDriver resumed(&site.engine, &site.catalog, &resumed_store,
                     MakeOptions());
  auto resumed_report = resumed.Resume(query);
  ASSERT_TRUE(resumed_report.ok()) << resumed_report.status().ToString();
  EXPECT_GT(resumed_report->resumed_steps, 0)
      << "the checkpointed step must be reused, not re-executed";

  Outcome out = Digest(resumed, *resumed_report);
  EXPECT_EQ(out.result_records, reference.result_records);
  EXPECT_EQ(out.result_bytes, reference.result_bytes)
      << "resumed result must be byte-identical to the uninterrupted run";
  EXPECT_EQ(out.checkpoints, reference.checkpoints)
      << "continuation signatures and observed stats must line up";
  // Work split across the two half-runs never exceeds what one run does,
  // and the resumed half skipped at least the checkpointed step.
  EXPECT_LT(out.jobs_run, reference.jobs_run);

  // The resumed result is still the right answer.
  auto expected = NaiveEvaluateJoinBlock(&site.catalog, query.join_block);
  ASSERT_TRUE(expected.ok());
  std::vector<Value> actual = MustReadAll(*resumed_report->result);
  std::vector<Value> want = std::move(expected).value();
  SortRowsForComparison(&actual);
  SortRowsForComparison(&want);
  ASSERT_EQ(actual.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(actual[i].Compare(want[i]), 0);
  }
}

TEST_F(DriverRecoveryTest, ResumeWithCorruptManifestRunsFromScratch) {
  Site site;
  StatsStore store;
  DynoDriver driver(&site.engine, &site.catalog, &store, MakeOptions());

  // A corrupted (here: garbage) manifest must degrade to a full run.
  ASSERT_TRUE(
      WriteRows(&site.dfs, MakeOptions().checkpoint_path,
                {Value::String("corrupted beyond recognition")})
          .ok());
  Query query = MakeTpchQ10();
  auto report = driver.Resume(query);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->resumed_steps, 0);
  ASSERT_NE(report->result, nullptr);
  EXPECT_GT(report->result_records, 0u);
}

TEST_F(DriverRecoveryTest, ResumeWithoutManifestIsAPlainExecute) {
  Site site;
  StatsStore store;
  DynoDriver driver(&site.engine, &site.catalog, &store, MakeOptions());
  auto report = driver.Resume(MakeTpchQ2());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->resumed_steps, 0);
  EXPECT_GT(report->jobs_run, 0);
}

}  // namespace
}  // namespace dyno
