#include "test_util.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

namespace dyno {

namespace {

Result<bool> PassesFilter(const ExprPtr& filter, const Value& row) {
  if (filter == nullptr) return true;
  DYNO_ASSIGN_OR_RETURN(Value v, filter->Eval(row));
  return v.type() == Value::Type::kBool && v.bool_value();
}

}  // namespace

Result<std::vector<Value>> NaiveEvaluateJoinBlock(Catalog* catalog,
                                                  const JoinBlock& block) {
  DYNO_RETURN_IF_ERROR(ValidateJoinBlock(block));
  std::vector<Predicate> non_local;
  std::vector<LeafExpr> leaves = ExtractLeafExprs(block, &non_local);

  // Load + filter each leaf.
  std::map<std::string, std::vector<Value>> rows_by_alias;
  for (const LeafExpr& leaf : leaves) {
    DYNO_ASSIGN_OR_RETURN(std::shared_ptr<DfsFile> file,
                          catalog->OpenTable(leaf.table));
    DYNO_ASSIGN_OR_RETURN(std::vector<Value> rows, ReadAllRows(*file));
    std::vector<Value> kept;
    for (const Value& row : rows) {
      DYNO_ASSIGN_OR_RETURN(bool pass, PassesFilter(leaf.filter, row));
      if (pass) kept.push_back(row);
    }
    rows_by_alias[leaf.alias] = std::move(kept);
  }

  // Greedy connected join order starting at the first table.
  std::vector<Value> current = rows_by_alias[block.tables[0].alias];
  std::set<std::string> joined{block.tables[0].alias};
  std::set<size_t> applied_preds;

  auto apply_covered_preds = [&](std::vector<Value>* rows) -> Status {
    for (size_t i = 0; i < non_local.size(); ++i) {
      if (applied_preds.count(i)) continue;
      bool covered = true;
      for (const std::string& alias : non_local[i].aliases) {
        if (!joined.count(alias)) {
          covered = false;
          break;
        }
      }
      if (!covered) continue;
      std::vector<Value> filtered;
      for (const Value& row : *rows) {
        DYNO_ASSIGN_OR_RETURN(bool pass,
                              PassesFilter(non_local[i].expr, row));
        if (pass) filtered.push_back(row);
      }
      *rows = std::move(filtered);
      applied_preds.insert(i);
    }
    return Status::OK();
  };

  while (joined.size() < block.tables.size()) {
    // Find an unjoined alias connected to the current set.
    std::string next;
    std::vector<std::pair<std::string, std::string>> keys;
    for (const TableRef& ref : block.tables) {
      if (joined.count(ref.alias)) continue;
      keys.clear();
      for (const JoinEdge& edge : block.edges) {
        if (edge.left_alias == ref.alias && joined.count(edge.right_alias)) {
          keys.emplace_back(edge.right_column, edge.left_column);
        } else if (edge.right_alias == ref.alias &&
                   joined.count(edge.left_alias)) {
          keys.emplace_back(edge.left_column, edge.right_column);
        }
      }
      if (!keys.empty()) {
        next = ref.alias;
        break;
      }
    }
    if (next.empty()) {
      return Status::InvalidArgument("disconnected join graph in oracle");
    }
    std::vector<std::string> left_cols;
    std::vector<std::string> right_cols;
    for (const auto& [l, r] : keys) {
      left_cols.push_back(l);
      right_cols.push_back(r);
    }
    // Hash the right side.
    std::map<std::string, std::vector<const Value*>> by_key;
    for (const Value& row : rows_by_alias[next]) {
      by_key[EncodeJoinKey(row, right_cols)].push_back(&row);
    }
    std::vector<Value> merged;
    for (const Value& row : current) {
      auto it = by_key.find(EncodeJoinKey(row, left_cols));
      if (it == by_key.end()) continue;
      for (const Value* r : it->second) {
        merged.push_back(MergeRows(row, *r));
      }
    }
    current = std::move(merged);
    joined.insert(next);
    DYNO_RETURN_IF_ERROR(apply_covered_preds(&current));
  }

  if (!block.output_columns.empty()) {
    for (Value& row : current) row = ProjectRow(row, block.output_columns);
  }
  return current;
}

Value CanonicalizeFieldOrder(const Value& v) {
  switch (v.type()) {
    case Value::Type::kStruct: {
      StructFields fields = v.fields();
      for (auto& [name, value] : fields) value = CanonicalizeFieldOrder(value);
      std::sort(fields.begin(), fields.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      return Value::Struct(std::move(fields));
    }
    case Value::Type::kArray: {
      ArrayElements elems = v.array();
      for (Value& e : elems) e = CanonicalizeFieldOrder(e);
      return Value::Array(std::move(elems));
    }
    default:
      return v;
  }
}

void SortRowsForComparison(std::vector<Value>* rows) {
  for (Value& row : *rows) row = CanonicalizeFieldOrder(row);
  std::sort(rows->begin(), rows->end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
}

std::vector<Value> MustReadAll(const DfsFile& file) {
  auto rows = ReadAllRows(file);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  return rows.ok() ? std::move(rows).value() : std::vector<Value>{};
}

}  // namespace dyno
