#include "optimizer/optimizer.h"

#include <gtest/gtest.h>

namespace dyno {
namespace {

TableStats MakeStats(double rows, double avg_size,
                     std::map<std::string, double> ndvs = {}) {
  TableStats stats;
  stats.cardinality = rows;
  stats.avg_record_size = avg_size;
  for (const auto& [col, ndv] : ndvs) {
    ColumnStats cs;
    cs.ndv = ndv;
    stats.columns[col] = cs;
  }
  return stats;
}

CostModelParams DefaultParams() {
  CostModelParams params;
  params.max_memory_bytes = 10000;
  params.memory_factor = 1.0;
  return params;
}

/// fact(100k rows) -- dim1(100) -- and fact -- dim2(50): a small star.
OptJoinGraph StarGraph() {
  OptJoinGraph graph;
  graph.relations = {
      {"fact", MakeStats(100000, 50, {{"d1", 100}, {"d2", 50}})},
      {"dim1", MakeStats(100, 30, {{"k1", 100}})},
      {"dim2", MakeStats(50, 30, {{"k2", 50}})},
  };
  graph.edges = {{"fact", "d1", "dim1", "k1"}, {"fact", "d2", "dim2", "k2"}};
  return graph;
}

TEST(OptimizerTest, SingleRelationDegenerates) {
  OptJoinGraph graph;
  graph.relations = {{"only", MakeStats(10, 10)}};
  JoinOptimizer optimizer(DefaultParams());
  auto result = optimizer.Optimize(graph);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->plan->IsLeaf());
}

TEST(OptimizerTest, TwoWayPrefersBroadcastWhenBuildFits) {
  OptJoinGraph graph;
  graph.relations = {{"big", MakeStats(100000, 50, {{"k", 100}})},
                     {"small", MakeStats(100, 30, {{"k", 100}})}};
  graph.edges = {{"big", "k", "small", "k"}};
  JoinOptimizer optimizer(DefaultParams());
  auto result = optimizer.Optimize(graph);
  ASSERT_TRUE(result.ok());
  const PlanNode& plan = *result->plan;
  ASSERT_FALSE(plan.IsLeaf());
  EXPECT_EQ(plan.method, JoinMethod::kBroadcast);
  EXPECT_EQ(plan.right->relation_id, "small")
      << "the small relation must be the build side";
  EXPECT_EQ(plan.left->relation_id, "big");
}

TEST(OptimizerTest, RepartitionWhenNothingFits) {
  OptJoinGraph graph;
  graph.relations = {{"a", MakeStats(50000, 100, {{"k", 1000}})},
                     {"b", MakeStats(60000, 100, {{"k", 1000}})}};
  graph.edges = {{"a", "k", "b", "k"}};
  JoinOptimizer optimizer(DefaultParams());  // memory 10000 bytes
  auto result = optimizer.Optimize(graph);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plan->method, JoinMethod::kRepartition);
}

TEST(OptimizerTest, JoinCardinalityUsesMaxNdv) {
  OptJoinGraph graph;
  graph.relations = {{"a", MakeStats(1000, 10, {{"k", 100}})},
                     {"b", MakeStats(500, 10, {{"k", 50}})}};
  graph.edges = {{"a", "k", "b", "k"}};
  JoinOptimizer optimizer(DefaultParams());
  auto result = optimizer.Optimize(graph);
  ASSERT_TRUE(result.ok());
  // |a ⋈ b| = 1000 * 500 / max(100, 50) = 5000.
  EXPECT_NEAR(result->plan->est_rows, 5000.0, 1.0);
}

TEST(OptimizerTest, StarJoinChainsBroadcasts) {
  JoinOptimizer optimizer(DefaultParams());
  auto result = optimizer.Optimize(StarGraph());
  ASSERT_TRUE(result.ok());
  const PlanNode& top = *result->plan;
  ASSERT_FALSE(top.IsLeaf());
  EXPECT_EQ(top.method, JoinMethod::kBroadcast);
  ASSERT_FALSE(top.left->IsLeaf());
  EXPECT_EQ(top.left->method, JoinMethod::kBroadcast);
  EXPECT_TRUE(top.chain_with_left)
      << "both dims fit simultaneously -> one map-only job";
}

TEST(OptimizerTest, ChainDisabledByFlag) {
  CostModelParams params = DefaultParams();
  params.enable_broadcast_chains = false;
  JoinOptimizer optimizer(params);
  auto result = optimizer.Optimize(StarGraph());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->plan->chain_with_left);
}

TEST(OptimizerTest, ChainRespectsSimultaneousMemoryLimit) {
  CostModelParams params = DefaultParams();
  // Each dim ~3000 bytes; both together exceed 4000.
  params.max_memory_bytes = 4000;
  OptJoinGraph graph;
  graph.relations = {
      {"fact", MakeStats(100000, 50, {{"d1", 100}, {"d2", 100}})},
      {"dim1", MakeStats(100, 30, {{"k1", 100}})},
      {"dim2", MakeStats(100, 30, {{"k2", 100}})},
  };
  graph.edges = {{"fact", "d1", "dim1", "k1"}, {"fact", "d2", "dim2", "k2"}};
  JoinOptimizer optimizer(params);
  auto result = optimizer.Optimize(graph);
  ASSERT_TRUE(result.ok());
  const PlanNode& top = *result->plan;
  if (top.method == JoinMethod::kBroadcast && !top.left->IsLeaf() &&
      top.left->method == JoinMethod::kBroadcast) {
    EXPECT_FALSE(top.chain_with_left)
        << "builds do not fit simultaneously -> no chain";
  }
}

TEST(OptimizerTest, BroadcastDisabledByFlag) {
  CostModelParams params = DefaultParams();
  params.enable_broadcast = false;
  JoinOptimizer optimizer(params);
  auto result = optimizer.Optimize(StarGraph());
  ASSERT_TRUE(result.ok());
  std::function<void(const PlanNode&)> check = [&](const PlanNode& node) {
    if (node.IsLeaf()) return;
    EXPECT_EQ(node.method, JoinMethod::kRepartition);
    check(*node.left);
    check(*node.right);
  };
  check(*result->plan);
}

TEST(OptimizerTest, LeftDeepOnlyModeRestrictsShape) {
  // Chain a-b-c-d where a bushy split would be natural.
  OptJoinGraph graph;
  graph.relations = {{"a", MakeStats(10000, 40, {{"ab", 100}})},
                     {"b", MakeStats(10000, 40, {{"ab", 100}, {"bc", 100}})},
                     {"c", MakeStats(10000, 40, {{"bc", 100}, {"cd", 100}})},
                     {"d", MakeStats(10000, 40, {{"cd", 100}})}};
  graph.edges = {{"a", "ab", "b", "ab"},
                 {"b", "bc", "c", "bc"},
                 {"c", "cd", "d", "cd"}};
  CostModelParams params = DefaultParams();
  params.left_deep_only = true;
  JoinOptimizer optimizer(params);
  auto result = optimizer.Optimize(graph);
  ASSERT_TRUE(result.ok());
  std::function<void(const PlanNode&)> check = [&](const PlanNode& node) {
    if (node.IsLeaf()) return;
    EXPECT_TRUE(node.right->IsLeaf()) << "left-deep: right child is a leaf";
    check(*node.left);
  };
  check(*result->plan);
}

TEST(OptimizerTest, BushyBeatsLeftDeepOnTwoBranchQuery) {
  // Two heavy branches that each reduce massively before the final join:
  // bushy evaluates both reductions first.
  OptJoinGraph graph;
  graph.relations = {
      {"l1", MakeStats(100000, 60, {{"k1", 50000}, {"j", 5000}})},
      {"f1", MakeStats(50, 20, {{"k1", 50}})},
      {"l2", MakeStats(100000, 60, {{"k2", 50000}, {"j", 5000}})},
      {"f2", MakeStats(50, 20, {{"k2", 50}})},
  };
  graph.edges = {{"l1", "k1", "f1", "k1"},
                 {"l2", "k2", "f2", "k2"},
                 {"l1", "j", "l2", "j"}};
  CostModelParams bushy_params = DefaultParams();
  CostModelParams ld_params = DefaultParams();
  ld_params.left_deep_only = true;
  auto bushy = JoinOptimizer(bushy_params).Optimize(graph);
  auto left_deep = JoinOptimizer(ld_params).Optimize(graph);
  ASSERT_TRUE(bushy.ok());
  ASSERT_TRUE(left_deep.ok());
  EXPECT_LE(bushy->plan->est_cost, left_deep->plan->est_cost);
}

TEST(OptimizerTest, NonLocalPredAttachedAtLowestCoveringJoin) {
  OptJoinGraph graph = StarGraph();
  OptNonLocalPred pred;
  pred.expr = Eq(Col("x"), LitInt(1));
  pred.relation_ids = {"fact", "dim1"};
  pred.assumed_selectivity = 1.0;
  graph.non_local_preds = {pred};
  JoinOptimizer optimizer(DefaultParams());
  auto result = optimizer.Optimize(graph);
  ASSERT_TRUE(result.ok());
  // Find the unique node with a post filter; it must cover fact+dim1 and
  // its children must not.
  int filters = 0;
  std::function<void(const PlanNode&)> walk = [&](const PlanNode& node) {
    if (node.IsLeaf()) return;
    if (node.post_filter != nullptr) {
      ++filters;
      std::vector<std::string> ids;
      node.CollectLeafIds(&ids);
      EXPECT_NE(std::find(ids.begin(), ids.end(), "fact"), ids.end());
      EXPECT_NE(std::find(ids.begin(), ids.end(), "dim1"), ids.end());
    }
    walk(*node.left);
    walk(*node.right);
  };
  walk(*result->plan);
  EXPECT_EQ(filters, 1);
}

TEST(OptimizerTest, AssumedSelectivityShrinksEstimates) {
  OptJoinGraph graph = StarGraph();
  OptNonLocalPred pred;
  pred.expr = Eq(Col("x"), LitInt(1));
  pred.relation_ids = {"fact", "dim1"};
  pred.assumed_selectivity = 0.1;
  graph.non_local_preds = {pred};
  JoinOptimizer optimizer(DefaultParams());
  auto with_pred = optimizer.Optimize(graph);
  auto without = optimizer.Optimize(StarGraph());
  ASSERT_TRUE(with_pred.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_LT(with_pred->plan->est_rows, without->plan->est_rows);
}

TEST(OptimizerTest, DisconnectedGraphRejected) {
  OptJoinGraph graph;
  graph.relations = {{"a", MakeStats(10, 10)}, {"b", MakeStats(10, 10)}};
  JoinOptimizer optimizer(DefaultParams());
  EXPECT_FALSE(optimizer.Optimize(graph).ok());
}

TEST(OptimizerTest, ValidationErrors) {
  JoinOptimizer optimizer(DefaultParams());
  OptJoinGraph empty;
  EXPECT_FALSE(optimizer.Optimize(empty).ok());

  OptJoinGraph dup;
  dup.relations = {{"a", MakeStats(1, 1)}, {"a", MakeStats(1, 1)}};
  EXPECT_FALSE(optimizer.Optimize(dup).ok());

  OptJoinGraph bad_edge;
  bad_edge.relations = {{"a", MakeStats(1, 1)}, {"b", MakeStats(1, 1)}};
  bad_edge.edges = {{"a", "k", "zz", "k"}};
  EXPECT_FALSE(optimizer.Optimize(bad_edge).ok());
}

TEST(OptimizerTest, WideJoinGraphsUpTo63RelationsValidate) {
  // The enumeration mask is 64-bit: 63 relations are representable, 64 are
  // not. Exhaustive enumeration is infeasible at that width, so exercise
  // only the validation boundary (left_deep_only keeps any accidental
  // enumeration from exploding if validation were to pass wrongly).
  auto chain = [](int n) {
    OptJoinGraph graph;
    for (int i = 0; i < n; ++i) {
      std::map<std::string, double> ndvs;
      if (i > 0) ndvs["e" + std::to_string(i - 1)] = 10;
      if (i < n - 1) ndvs["e" + std::to_string(i)] = 10;
      graph.relations.push_back(
          {"r" + std::to_string(i), MakeStats(100, 20, ndvs)});
    }
    for (int i = 0; i + 1 < n; ++i) {
      std::string col = "e" + std::to_string(i);
      graph.edges.push_back(
          {"r" + std::to_string(i), col, "r" + std::to_string(i + 1), col});
    }
    return graph;
  };
  JoinOptimizer optimizer(DefaultParams());
  auto too_wide = optimizer.Optimize(chain(64));
  ASSERT_FALSE(too_wide.ok());
  EXPECT_EQ(too_wide.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(too_wide.status().ToString().find("63"), std::string::npos)
      << too_wide.status().ToString();

  // The old 20-relation cap is gone: a 24-way chain optimizes fine (chains
  // have few connected subgraphs, so this stays fast even bushy).
  auto wide = optimizer.Optimize(chain(24));
  ASSERT_TRUE(wide.ok()) << wide.status().ToString();
  std::vector<std::string> ids;
  wide->plan->CollectLeafIds(&ids);
  EXPECT_EQ(ids.size(), 24u);
}

TEST(OptimizerTest, SameColumnNameOnBothSidesKeepsDistinctNdvs) {
  // Both relations expose a join column literally named "id" with very
  // different NDVs. Estimation must key NDV by (relation, column): with the
  // old bare-column map, one side's NDV silently overwrote the other's.
  OptJoinGraph graph;
  graph.relations = {{"orders", MakeStats(10000, 20, {{"id", 2500}})},
                     {"users", MakeStats(400, 20, {{"id", 40}})}};
  graph.edges = {{"orders", "id", "users", "id"}};
  JoinOptimizer optimizer(DefaultParams());
  auto result = optimizer.Optimize(graph);
  ASSERT_TRUE(result.ok());
  // |orders ⋈ users| = 10000 * 400 / max(2500, 40) = 1600.
  EXPECT_NEAR(result->plan->est_rows, 1600.0, 1.0);
}

TEST(OptimizerTest, ReportCountsGrowWithRelations) {
  JoinOptimizer optimizer(DefaultParams());
  auto small = optimizer.Optimize(StarGraph());
  ASSERT_TRUE(small.ok());

  // 6-way chain.
  OptJoinGraph big;
  for (int i = 0; i < 6; ++i) {
    std::map<std::string, double> ndvs;
    if (i > 0) ndvs["e" + std::to_string(i - 1)] = 100;
    if (i < 5) ndvs["e" + std::to_string(i)] = 100;
    big.relations.push_back(
        {"r" + std::to_string(i), MakeStats(1000, 20, ndvs)});
  }
  for (int i = 0; i < 5; ++i) {
    std::string col = "e" + std::to_string(i);
    big.edges.push_back(
        {"r" + std::to_string(i), col, "r" + std::to_string(i + 1), col});
  }
  auto large = optimizer.Optimize(big);
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large->report.expressions_costed,
            small->report.expressions_costed);
  EXPECT_GE(large->report.simulated_ms, small->report.simulated_ms);
}

TEST(OptimizerTest, StarGraphReportsEnumerationMetrics) {
  // The §5.2 star: 3 relations -> every connected subset is a memo group
  // ({fact},{dim1},{dim2},{fact,dim1},{fact,dim2},{fact,dim1,dim2} = 6; the
  // dim1-dim2 pair is disconnected and must not become a group). Each split
  // whose build side contains the 5 MB fact is pruned by M_max before
  // costing: (dim1|fact), (dim2|fact), (dim1|fact dim2), (dim2|fact dim1)
  // = 4. Chaining then collapses the two stacked dim broadcasts into one
  // map-only job.
  JoinOptimizer optimizer(DefaultParams());
  auto result = optimizer.Optimize(StarGraph());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.groups_explored, 6);
  EXPECT_EQ(result->report.plans_pruned_memory, 4);
  EXPECT_EQ(result->report.broadcast_chain_collapses, 1);
  EXPECT_GT(result->report.expressions_costed, 0);
  EXPECT_GT(result->report.best_cost, 0.0);
}

TEST(OptimizerTest, MemoryPruneCountsSkippedBroadcasts) {
  // Neither side of this join fits in M_max, so every broadcast alternative
  // is pruned before costing; the report must say so, and with broadcast
  // impossible there is nothing to chain.
  OptJoinGraph graph;
  graph.relations = {{"a", MakeStats(50000, 100, {{"k", 1000}})},
                     {"b", MakeStats(60000, 100, {{"k", 1000}})}};
  graph.edges = {{"a", "k", "b", "k"}};
  JoinOptimizer optimizer(DefaultParams());  // memory 10000 bytes
  auto result = optimizer.Optimize(graph);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->report.plans_pruned_memory, 0);
  EXPECT_EQ(result->report.broadcast_chain_collapses, 0);
  EXPECT_EQ(result->report.groups_explored, 3);  // {a},{b},{a,b}

  // The same graph with broadcast disabled outright skips those
  // alternatives silently: they were never candidates, so nothing is
  // counted as a *memory* prune.
  CostModelParams params = DefaultParams();
  params.enable_broadcast = false;
  JoinOptimizer no_broadcast(params);
  auto repart_only = no_broadcast.Optimize(graph);
  ASSERT_TRUE(repart_only.ok());
  EXPECT_EQ(repart_only->report.plans_pruned_memory, 0);
}

TEST(OptimizerTest, ChainCollapseCountMatchesPlanShape) {
  // A fact with three in-memory dims: chaining should collapse both upper
  // broadcasts onto the lowest one (two chain_with_left flags).
  OptJoinGraph graph;
  graph.relations = {
      {"fact",
       MakeStats(100000, 50, {{"d1", 100}, {"d2", 50}, {"d3", 25}})},
      {"dim1", MakeStats(100, 30, {{"k1", 100}})},
      {"dim2", MakeStats(50, 30, {{"k2", 50}})},
      {"dim3", MakeStats(25, 30, {{"k3", 25}})},
  };
  graph.edges = {{"fact", "d1", "dim1", "k1"},
                 {"fact", "d2", "dim2", "k2"},
                 {"fact", "d3", "dim3", "k3"}};
  JoinOptimizer optimizer(DefaultParams());
  auto result = optimizer.Optimize(graph);
  ASSERT_TRUE(result.ok());
  int flags = 0;
  std::function<void(const PlanNode&)> count = [&](const PlanNode& node) {
    if (node.IsLeaf()) return;
    if (node.chain_with_left) ++flags;
    count(*node.left);
    count(*node.right);
  };
  count(*result->plan);
  EXPECT_EQ(result->report.broadcast_chain_collapses, flags);
  EXPECT_EQ(flags, 2);

  // With chaining disabled the report must agree with the (flag-free) plan.
  CostModelParams params = DefaultParams();
  params.enable_broadcast_chains = false;
  JoinOptimizer unchained(params);
  auto flat = unchained.Optimize(graph);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat->report.broadcast_chain_collapses, 0);
}

TEST(OptimizerTest, RecostPlanChainAccounting) {
  // Manual chain: (probe *b s1) *b s2 with chain flag; chained recost must
  // be cheaper than unchained (saves the intermediate materialization and
  // re-probe).
  auto build = [](bool chained) {
    auto j1 = PlanNode::Join(JoinMethod::kBroadcast, PlanNode::Leaf("probe"),
                             PlanNode::Leaf("s1"), {{"a", "a"}});
    j1->left->est_bytes = 100000;
    j1->right->est_bytes = 500;
    j1->est_bytes = 100000;
    auto j2 = PlanNode::Join(JoinMethod::kBroadcast, std::move(j1),
                             PlanNode::Leaf("s2"), {{"b", "b"}});
    j2->right->est_bytes = 500;
    j2->est_bytes = 100000;
    j2->chain_with_left = chained;
    return j2;
  };
  CostModelParams params = DefaultParams();
  auto chained = build(true);
  auto unchained = build(false);
  double c1 = RecostPlan(chained.get(), params, false);
  double c2 = RecostPlan(unchained.get(), params, false);
  EXPECT_LT(c1, c2);
}

}  // namespace
}  // namespace dyno
