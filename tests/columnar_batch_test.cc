// Property tests for the columnar batch codec: FromRows→Encode→Decode→
// ToRows must be byte-exact for every column type — bools, ints, doubles,
// strings, mixed/nested values, nulls, absent fields, empty batches,
// irregular rows — and every corruption of an encoded frame must surface
// as Status::DataLoss, never a crash or a silently wrong row.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "columnar/column.h"
#include "common/random.h"
#include "common/string_util.h"
#include "json/value.h"
#include "storage/dfs.h"

namespace dyno {
namespace {

using columnar::ColumnBatch;

int FuzzIters(int base) {
  static const int env_iters = [] {
    const char* env = std::getenv("DYNO_FUZZ_ITERS");
    return env != nullptr ? std::atoi(env) : 0;
  }();
  return env_iters > 0 ? env_iters : base;
}

/// Byte-level identity of two row vectors: same count, every row encodes
/// to the same bytes (field order included — Compare() alone would accept
/// reordered structs).
void ExpectRowsByteIdentical(const std::vector<Value>& got,
                             const std::vector<Value>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    std::string got_bytes;
    std::string want_bytes;
    got[i].EncodeTo(&got_bytes);
    want[i].EncodeTo(&want_bytes);
    ASSERT_EQ(got_bytes, want_bytes)
        << "row " << i << ": " << got[i].ToString() << " vs "
        << want[i].ToString();
  }
}

/// Full round trip through the wire format.
void ExpectRoundTrip(const std::vector<Value>& rows) {
  ColumnBatch batch = ColumnBatch::FromRows(rows);
  EXPECT_EQ(batch.num_rows(), rows.size());
  // In-memory reassembly.
  ExpectRowsByteIdentical(batch.ToRows(), rows);
  // Through the encoded frame.
  std::string frame;
  batch.EncodeTo(&frame);
  auto decoded = ColumnBatch::Decode(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_rows(), rows.size());
  EXPECT_EQ(decoded->irregular(), batch.irregular());
  ExpectRowsByteIdentical(decoded->ToRows(), rows);
  // Re-encoding the decoded batch reproduces the frame bit for bit.
  std::string frame2;
  decoded->EncodeTo(&frame2);
  EXPECT_EQ(frame, frame2);
}

TEST(ColumnarBatchTest, EmptyBatchRoundTrips) { ExpectRoundTrip({}); }

TEST(ColumnarBatchTest, EveryScalarTypeRoundTrips) {
  std::vector<Value> rows;
  for (int i = 0; i < 50; ++i) {
    rows.push_back(MakeRow({{"b", Value::Bool(i % 2 == 0)},
                            {"i", Value::Int(i * 1000003 - 7)},
                            {"d", Value::Double(i * 0.25 - 3.5)},
                            {"s", Value::String(StrFormat("s%d", i))}}));
  }
  ColumnBatch batch = ColumnBatch::FromRows(rows);
  EXPECT_FALSE(batch.irregular());
  EXPECT_EQ(batch.num_columns(), 4u);
  ExpectRoundTrip(rows);
}

TEST(ColumnarBatchTest, NullsAndAbsentFieldsAreDistinct) {
  // Row 0 has x set, row 1 has x explicitly null, row 2 omits x entirely.
  // JSON rows are self-describing, so null and absent must both survive.
  std::vector<Value> rows = {
      MakeRow({{"x", Value::Int(1)}, {"y", Value::Int(10)}}),
      MakeRow({{"x", Value::Null()}, {"y", Value::Int(20)}}),
      MakeRow({{"y", Value::Int(30)}}),
  };
  ExpectRoundTrip(rows);
}

TEST(ColumnarBatchTest, NestedAndMixedColumnsFallBackToMixed) {
  // A column holding structs/arrays, and one whose rows disagree on scalar
  // type: both legal, both round-trip via the kMixed representation.
  std::vector<Value> rows = {
      MakeRow({{"n", Value::Struct({{"z", Value::Int(1)}})},
               {"m", Value::Int(1)}}),
      MakeRow({{"n", Value::Array({Value::Int(1), Value::Null()})},
               {"m", Value::String("two")}}),
  };
  ExpectRoundTrip(rows);
}

TEST(ColumnarBatchTest, IrregularRowsRoundTrip) {
  // Non-struct rows and duplicate field names cannot be columnarized; the
  // irregular fallback must still be byte-exact.
  std::vector<Value> plain = {Value::Int(1), Value::String("two"),
                              Value::Null()};
  EXPECT_TRUE(ColumnBatch::FromRows(plain).irregular());
  ExpectRoundTrip(plain);

  std::vector<Value> dup = {
      Value::Struct({{"a", Value::Int(1)}, {"a", Value::Int(2)}}),
      Value::Struct({{"a", Value::Int(3)}}),
  };
  EXPECT_TRUE(ColumnBatch::FromRows(dup).irregular());
  ExpectRoundTrip(dup);
}

TEST(ColumnarBatchTest, ReorderedFieldsRoundTripExactly) {
  // Field order differs between rows: whether the batch columnarizes or
  // falls back, the original per-row field order must come back.
  std::vector<Value> rows = {
      MakeRow({{"a", Value::Int(1)}, {"b", Value::Int(2)}}),
      MakeRow({{"b", Value::Int(3)}, {"a", Value::Int(4)}}),
  };
  ExpectRoundTrip(rows);
}

// ---------------------------------------------------------------------------
// Randomized round-trip property over all shapes.

Value RandomScalar(Rng* rng) {
  switch (rng->Uniform(5)) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Bool(rng->Bernoulli(0.5));
    case 2:
      return Value::Int(static_cast<int64_t>(rng->Next()));
    case 3:
      return Value::Double(rng->NextDouble() * 1e9 - 5e8);
    default: {
      std::string s(rng->Uniform(24), '\0');
      for (char& c : s) c = static_cast<char>(rng->Uniform(256));
      return Value::String(std::move(s));
    }
  }
}

Value RandomCell(Rng* rng, int depth) {
  double container_p = depth >= 3 ? 0.0 : 0.25;
  double dice = rng->NextDouble();
  if (dice < container_p / 2) {
    ArrayElements elems;
    uint64_t n = rng->Uniform(4);
    for (uint64_t i = 0; i < n; ++i) {
      elems.push_back(RandomCell(rng, depth + 1));
    }
    return Value::Array(std::move(elems));
  }
  if (dice < container_p) {
    StructFields fields;
    uint64_t n = rng->Uniform(4);
    for (uint64_t i = 0; i < n; ++i) {
      fields.emplace_back(StrFormat("f%llu", (unsigned long long)i),
                          RandomCell(rng, depth + 1));
    }
    return Value::Struct(std::move(fields));
  }
  return RandomScalar(rng);
}

std::vector<Value> RandomBatch(Rng* rng) {
  uint64_t num_rows = rng->Uniform(40);
  uint64_t num_cols = 1 + rng->Uniform(6);
  bool regular = rng->Bernoulli(0.6);
  std::vector<Value> rows;
  for (uint64_t r = 0; r < num_rows; ++r) {
    if (!regular && rng->Bernoulli(0.1)) {
      rows.push_back(RandomCell(rng, 0));  // non-struct row
      continue;
    }
    StructFields fields;
    for (uint64_t c = 0; c < num_cols; ++c) {
      if (rng->Bernoulli(0.15)) continue;  // absent
      Value cell = regular ? (rng->Bernoulli(0.1)
                                  ? Value::Null()
                                  : Value::Int(static_cast<int64_t>(
                                        rng->Next() & 0xffffff)))
                           : RandomCell(rng, 0);
      fields.emplace_back(StrFormat("c%llu", (unsigned long long)c),
                          std::move(cell));
    }
    rows.push_back(Value::Struct(std::move(fields)));
  }
  return rows;
}

class BatchFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchFuzzTest, RandomBatchesRoundTrip) {
  Rng rng(GetParam() * 7919 + 1);
  const int iters = FuzzIters(100);
  for (int i = 0; i < iters; ++i) {
    ExpectRoundTrip(RandomBatch(&rng));
  }
}

TEST_P(BatchFuzzTest, EveryBitFlipSurfacesAsDataLoss) {
  // Unlike the raw row codec (whose decoder may legitimately parse a
  // corrupted prefix), the batch frame carries a trailing CRC32C that is
  // verified before any parsing — so EVERY byte-level corruption must be
  // rejected as DataLoss. Never a crash, never different rows.
  Rng rng(GetParam() ^ 0xc01a5ULL);
  const int iters = FuzzIters(100);
  for (int i = 0; i < iters; ++i) {
    std::vector<Value> rows = RandomBatch(&rng);
    std::string frame;
    ColumnBatch::FromRows(rows).EncodeTo(&frame);
    ASSERT_FALSE(frame.empty());
    std::string corrupted = frame;
    switch (rng.Uniform(3)) {
      case 0: {  // flip 1..8 bits of one byte
        size_t pos = rng.Uniform(corrupted.size());
        corrupted[pos] = static_cast<char>(
            static_cast<uint8_t>(corrupted[pos]) ^
            static_cast<uint8_t>(1 + rng.Uniform(255)));
        break;
      }
      case 1:  // truncate
        corrupted.resize(rng.Uniform(corrupted.size()));
        break;
      default:  // trailing garbage
        corrupted.push_back(static_cast<char>(rng.Uniform(256)));
        break;
    }
    auto decoded = ColumnBatch::Decode(corrupted);
    ASSERT_FALSE(decoded.ok()) << "corrupted frame decoded successfully";
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss)
        << decoded.status().ToString();
  }
}

TEST_P(BatchFuzzTest, GarbageFramesNeverCrashDecoder) {
  Rng rng(GetParam() * 31337 + 5);
  const int iters = FuzzIters(200);
  for (int i = 0; i < iters; ++i) {
    std::string garbage(rng.Uniform(96), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Uniform(256));
    auto decoded = ColumnBatch::Decode(garbage);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  }
}

TEST_P(BatchFuzzTest, BitFlippedColumnarSplitsReadAsDataLoss) {
  // The same guarantee one level up: a columnar DFS split hit by bit rot
  // must fail the read path with DataLoss (the split CRC fires first; the
  // frame CRC backstops it), and un-flipping restores the data exactly.
  Rng rng(GetParam() * 6151 + 9);
  const int iters = FuzzIters(40);
  Dfs dfs;
  std::vector<Value> rows;
  for (int i = 0; i < 300; ++i) {
    rows.push_back(MakeRow({{"id", Value::Int(i)},
                            {"s", Value::String(StrFormat("v%d", i))}}));
  }
  auto file = WriteRows(&dfs, "/fuzz_col", rows, /*target_split_bytes=*/512,
                        SplitFormat::kColumnar);
  ASSERT_TRUE(file.ok());
  ASSERT_GT((*file)->splits().size(), 1u);
  EXPECT_EQ((*file)->splits()[0].format, SplitFormat::kColumnar);
  ASSERT_TRUE(ReadAllRows(**file).ok());
  for (int i = 0; i < iters; ++i) {
    size_t split = rng.Uniform((*file)->splits().size());
    size_t size = (*file)->splits()[split].data.size();
    if (size == 0) continue;
    size_t offset = rng.Uniform(size);
    uint8_t mask = static_cast<uint8_t>(1 + rng.Uniform(255));
    ASSERT_TRUE((*file)->CorruptByteForTesting(split, offset, mask).ok());
    auto read = ReadAllRows(**file);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), StatusCode::kDataLoss)
        << read.status().ToString();
    ASSERT_TRUE((*file)->CorruptByteForTesting(split, offset, mask).ok());
    ASSERT_TRUE(ReadAllRows(**file).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace dyno
