#include "storage/dfs.h"

#include <gtest/gtest.h>

#include "storage/catalog.h"

namespace dyno {
namespace {

Value Row(int64_t id) {
  return MakeRow({{"id", Value::Int(id)},
                  {"payload", Value::String(std::string(20, 'x'))}});
}

TEST(DfsTest, CreateOpenDelete) {
  Dfs dfs;
  ASSERT_TRUE(dfs.Create("/a").ok());
  EXPECT_TRUE(dfs.Exists("/a"));
  EXPECT_TRUE(dfs.Open("/a").ok());
  EXPECT_FALSE(dfs.Create("/a").ok()) << "duplicate create must fail";
  EXPECT_TRUE(dfs.Delete("/a").ok());
  EXPECT_FALSE(dfs.Exists("/a"));
  EXPECT_FALSE(dfs.Open("/a").ok());
  EXPECT_FALSE(dfs.Delete("/a").ok());
}

TEST(DfsTest, DeleteWithPrefix) {
  Dfs dfs;
  ASSERT_TRUE(dfs.Create("/tmp/x1").ok());
  ASSERT_TRUE(dfs.Create("/tmp/x2").ok());
  ASSERT_TRUE(dfs.Create("/tables/t").ok());
  EXPECT_EQ(dfs.DeleteWithPrefix("/tmp/"), 2);
  EXPECT_TRUE(dfs.Exists("/tables/t"));
}

TEST(DfsTest, WriterSplitsAtTargetSize) {
  Dfs dfs;
  std::vector<Value> rows;
  for (int i = 0; i < 200; ++i) rows.push_back(Row(i));
  auto file = WriteRows(&dfs, "/t", rows, /*target_split_bytes=*/256);
  ASSERT_TRUE(file.ok());
  EXPECT_GT((*file)->splits().size(), 5u);
  EXPECT_EQ((*file)->num_records(), 200u);
  uint64_t total = 0;
  for (const Split& split : (*file)->splits()) total += split.num_records;
  EXPECT_EQ(total, 200u);
}

TEST(DfsTest, ReadAllRowsRoundTrip) {
  Dfs dfs;
  std::vector<Value> rows;
  for (int i = 0; i < 50; ++i) rows.push_back(Row(i));
  auto file = WriteRows(&dfs, "/t", rows);
  ASSERT_TRUE(file.ok());
  auto read = ReadAllRows(**file);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ((*read)[i].Compare(rows[i]), 0);
  }
}

TEST(DfsTest, AvgRecordSize) {
  Dfs dfs;
  std::vector<Value> rows = {Row(1), Row(2), Row(3), Row(4)};
  auto file = WriteRows(&dfs, "/t", rows);
  ASSERT_TRUE(file.ok());
  EXPECT_NEAR((*file)->avg_record_size(),
              static_cast<double>((*file)->num_bytes()) / 4.0, 1e-9);
}

TEST(DfsTest, EmptyFileBehaves) {
  Dfs dfs;
  auto file = WriteRows(&dfs, "/empty", {});
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->num_records(), 0u);
  EXPECT_EQ((*file)->splits().size(), 0u);
  EXPECT_DOUBLE_EQ((*file)->avg_record_size(), 0.0);
}

TEST(DfsTest, SplitReaderIteratesOneSplit) {
  Dfs dfs;
  std::vector<Value> rows = {Row(1), Row(2)};
  auto file = WriteRows(&dfs, "/t", rows);
  ASSERT_TRUE(file.ok());
  ASSERT_EQ((*file)->splits().size(), 1u);
  SplitReader reader(&(*file)->splits()[0]);
  EXPECT_FALSE(reader.AtEnd());
  EXPECT_TRUE(reader.Next().ok());
  EXPECT_TRUE(reader.Next().ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_FALSE(reader.Next().ok());
}

TEST(CatalogTest, RegisterAndLookup) {
  Dfs dfs;
  Catalog catalog(&dfs);
  ASSERT_TRUE(catalog.CreateTable("t", {Row(1), Row(2)}).ok());
  auto entry = catalog.Lookup("t");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->dfs_path, "/tables/t");
  auto file = catalog.OpenTable("t");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->num_records(), 2u);
  EXPECT_FALSE(catalog.Lookup("missing").ok());
  EXPECT_FALSE(catalog.CreateTable("t", {}).ok()) << "duplicate table";
  EXPECT_EQ(catalog.TableNames(), std::vector<std::string>{"t"});
}

TEST(CatalogTest, RegisterRequiresExistingFile) {
  Dfs dfs;
  Catalog catalog(&dfs);
  EXPECT_FALSE(catalog.RegisterTable("t", "/nope").ok());
}

}  // namespace
}  // namespace dyno
