#include "exec/plan_executor.h"

#include <gtest/gtest.h>

#include "exec/aggregates.h"
#include "exec/broadcast.h"
#include "exec/row_ops.h"
#include "test_util.h"

namespace dyno {
namespace {

// --- row ops ---

TEST(RowOpsTest, EncodeJoinKeyStableAndDiscriminating) {
  Value r1 = MakeRow({{"a", Value::Int(1)}, {"b", Value::String("x")}});
  Value r2 = MakeRow({{"a", Value::Int(1)}, {"b", Value::String("x")}});
  Value r3 = MakeRow({{"a", Value::Int(2)}, {"b", Value::String("x")}});
  EXPECT_EQ(EncodeJoinKey(r1, {"a", "b"}), EncodeJoinKey(r2, {"a", "b"}));
  EXPECT_NE(EncodeJoinKey(r1, {"a", "b"}), EncodeJoinKey(r3, {"a", "b"}));
  EXPECT_EQ(EncodeJoinKey(r1, {"missing"}), EncodeJoinKey(r3, {"missing"}));
}

TEST(RowOpsTest, MergeRowsKeepsLeftOnDuplicate) {
  Value left = MakeRow({{"a", Value::Int(1)}, {"shared", Value::Int(10)}});
  Value right = MakeRow({{"b", Value::Int(2)}, {"shared", Value::Int(20)}});
  Value merged = MergeRows(left, right);
  EXPECT_EQ(merged.FindField("a")->int_value(), 1);
  EXPECT_EQ(merged.FindField("b")->int_value(), 2);
  EXPECT_EQ(merged.FindField("shared")->int_value(), 10);
  EXPECT_EQ(merged.fields().size(), 3u);
}

TEST(RowOpsTest, ProjectRowKeepsOrderDropsMissing) {
  Value row = MakeRow({{"a", Value::Int(1)}, {"b", Value::Int(2)}});
  Value proj = ProjectRow(row, {"b", "zzz", "a"});
  ASSERT_EQ(proj.fields().size(), 2u);
  EXPECT_EQ(proj.fields()[0].first, "b");
  EXPECT_EQ(proj.fields()[1].first, "a");
}

// --- broadcast table ---

TEST(BroadcastTest, BuildAppliesFilterAndKeys) {
  Dfs dfs;
  std::vector<Value> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back(MakeRow({{"k", Value::Int(i % 10)},
                            {"keep", Value::Int(i % 2)}}));
  }
  auto file = WriteRows(&dfs, "/t", rows);
  ASSERT_TRUE(file.ok());
  auto table = BuildBroadcastTable(**file, Eq(Col("keep"), LitInt(1)), {"k"});
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows, 50u);
  // Rows with keep==1 are the odd ones, so only odd keys remain.
  EXPECT_EQ((*table)->rows_by_key.size(), 5u);
  EXPECT_EQ((*table)->load_bytes, (*file)->num_bytes());
  EXPECT_LT((*table)->built_bytes, (*file)->num_bytes());
}

// --- decomposition ---

std::unique_ptr<PlanNode> BushyPlan() {
  // (a *r b) *r (c *b d)
  auto ab = PlanNode::Join(JoinMethod::kRepartition, PlanNode::Leaf("a"),
                           PlanNode::Leaf("b"), {{"x", "x"}});
  auto cd = PlanNode::Join(JoinMethod::kBroadcast, PlanNode::Leaf("c"),
                           PlanNode::Leaf("d"), {{"y", "y"}});
  return PlanNode::Join(JoinMethod::kRepartition, std::move(ab),
                        std::move(cd), {{"z", "z"}});
}

TEST(DecomposeTest, BushyPlanYieldsThreeUnits) {
  auto plan = BushyPlan();
  auto units = PlanExecutor::Decompose(*plan);
  ASSERT_TRUE(units.ok());
  ASSERT_EQ(units->size(), 3u);
  // Children come before parents.
  EXPECT_TRUE((*units)[0].IsLeafJob());
  EXPECT_TRUE((*units)[1].IsLeafJob());
  EXPECT_FALSE((*units)[2].IsLeafJob());
  EXPECT_FALSE((*units)[0].map_only);
  EXPECT_TRUE((*units)[1].map_only);
  EXPECT_EQ((*units)[2].inputs.size(), 2u);
}

TEST(DecomposeTest, ChainCollapsesIntoOneUnit) {
  // ((probe *b s1) *b s2) with the chain flag on the top node.
  auto j1 = PlanNode::Join(JoinMethod::kBroadcast, PlanNode::Leaf("probe"),
                           PlanNode::Leaf("s1"), {{"a", "a"}});
  auto j2 = PlanNode::Join(JoinMethod::kBroadcast, std::move(j1),
                           PlanNode::Leaf("s2"), {{"b", "b"}});
  j2->chain_with_left = true;
  auto units = PlanExecutor::Decompose(*j2);
  ASSERT_TRUE(units.ok());
  ASSERT_EQ(units->size(), 1u);
  const JobUnit& unit = (*units)[0];
  EXPECT_TRUE(unit.map_only);
  EXPECT_EQ(unit.nodes.size(), 2u);
  ASSERT_EQ(unit.inputs.size(), 3u);
  EXPECT_EQ(unit.inputs[0].leaf_id, "probe");
  EXPECT_EQ(unit.inputs[1].leaf_id, "s1");
  EXPECT_EQ(unit.inputs[2].leaf_id, "s2");
  EXPECT_EQ(unit.uncertainty, 2);
}

TEST(DecomposeTest, LeafPlanYieldsNoUnits) {
  auto leaf = PlanNode::Leaf("a");
  auto units = PlanExecutor::Decompose(*leaf);
  ASSERT_TRUE(units.ok());
  EXPECT_TRUE(units->empty());
}

TEST(DecomposeTest, ChainOnRepartitionRejected) {
  auto j1 = PlanNode::Join(JoinMethod::kRepartition, PlanNode::Leaf("a"),
                           PlanNode::Leaf("b"), {{"x", "x"}});
  auto j2 = PlanNode::Join(JoinMethod::kRepartition, std::move(j1),
                           PlanNode::Leaf("c"), {{"y", "y"}});
  j2->chain_with_left = true;
  EXPECT_FALSE(PlanExecutor::Decompose(*j2).ok());
}

// --- execution ---

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : engine_(&dfs_, MakeConfig()) {}

  static ClusterConfig MakeConfig() {
    ClusterConfig config;
    config.job_startup_ms = 500;
    config.memory_per_task_bytes = 16 * 1024;
    return config;
  }

  void BindTable(PlanExecutor* executor, const std::string& id, int rows,
                 int key_mod, ExprPtr filter = nullptr) {
    std::vector<Value> data;
    for (int i = 0; i < rows; ++i) {
      data.push_back(MakeRow({{id + "_id", Value::Int(i)},
                              {id + "_k", Value::Int(i % key_mod)},
                              {id + "_v", Value::String("val")}}));
    }
    auto file = WriteRows(&dfs_, "/tables/" + id, data, 2048);
    ASSERT_TRUE(file.ok());
    RelationBinding binding;
    binding.file = *file;
    binding.scan_filter = std::move(filter);
    executor->Bind(id, std::move(binding));
  }

  Dfs dfs_;
  MapReduceEngine engine_;
};

TEST_F(ExecutorTest, RepartitionJoinProducesCorrectRows) {
  PlanExecutor executor(&engine_, ExecOptions());
  BindTable(&executor, "a", 60, 10);
  BindTable(&executor, "b", 30, 10);
  auto plan = PlanNode::Join(JoinMethod::kRepartition, PlanNode::Leaf("a"),
                             PlanNode::Leaf("b"), {{"a_k", "b_k"}});
  auto units = PlanExecutor::Decompose(*plan);
  ASSERT_TRUE(units.ok());
  PlanExecutor::UnitRequest request;
  request.unit = &(*units)[0];
  auto step = executor.ExecuteOne(request);
  ASSERT_TRUE(step.ok()) << step.status().ToString();
  // Each of the 60 a-rows matches 3 b-rows (30 rows over 10 key values).
  EXPECT_EQ(step->job.counters.output_records, 180u);
  EXPECT_DOUBLE_EQ(step->stats.cardinality, 180.0);
}

TEST_F(ExecutorTest, BroadcastJoinMatchesRepartitionJoin) {
  PlanExecutor executor(&engine_, ExecOptions());
  BindTable(&executor, "a", 80, 8);
  BindTable(&executor, "b", 16, 8);
  auto run = [&](JoinMethod method) -> uint64_t {
    auto plan = PlanNode::Join(method, PlanNode::Leaf("a"),
                               PlanNode::Leaf("b"), {{"a_k", "b_k"}});
    auto units = PlanExecutor::Decompose(*plan);
    EXPECT_TRUE(units.ok());
    PlanExecutor::UnitRequest request;
    request.unit = &(*units)[0];
    auto step = executor.ExecuteOne(request);
    EXPECT_TRUE(step.ok()) << step.status().ToString();
    return step->job.counters.output_records;
  };
  EXPECT_EQ(run(JoinMethod::kBroadcast), run(JoinMethod::kRepartition));
}

TEST_F(ExecutorTest, ScanFiltersAppliedOnBothSides) {
  PlanExecutor executor(&engine_, ExecOptions());
  BindTable(&executor, "a", 100, 10, Lt(Col("a_id"), LitInt(50)));
  BindTable(&executor, "b", 40, 10, Lt(Col("b_id"), LitInt(20)));
  auto plan = PlanNode::Join(JoinMethod::kRepartition, PlanNode::Leaf("a"),
                             PlanNode::Leaf("b"), {{"a_k", "b_k"}});
  auto units = PlanExecutor::Decompose(*plan);
  ASSERT_TRUE(units.ok());
  PlanExecutor::UnitRequest request;
  request.unit = &(*units)[0];
  auto step = executor.ExecuteOne(request);
  ASSERT_TRUE(step.ok());
  // 50 a-rows (5 per key) x 20 b-rows (2 per key) over 10 keys = 100.
  EXPECT_EQ(step->job.counters.output_records, 100u);
}

TEST_F(ExecutorTest, PostFilterAppliedAtJoin) {
  PlanExecutor executor(&engine_, ExecOptions());
  BindTable(&executor, "a", 40, 4);
  BindTable(&executor, "b", 8, 4);
  auto plan = PlanNode::Join(JoinMethod::kRepartition, PlanNode::Leaf("a"),
                             PlanNode::Leaf("b"), {{"a_k", "b_k"}});
  plan->post_filter = Lt(Col("a_id"), LitInt(10));
  auto units = PlanExecutor::Decompose(*plan);
  ASSERT_TRUE(units.ok());
  PlanExecutor::UnitRequest request;
  request.unit = &(*units)[0];
  auto step = executor.ExecuteOne(request);
  ASSERT_TRUE(step.ok());
  // Without filter: 40*2=80; with a_id<10: 10 a-rows x 2 = 20.
  EXPECT_EQ(step->job.counters.output_records, 20u);
}

TEST_F(ExecutorTest, ProjectionShrinksOutput) {
  PlanExecutor executor(&engine_, ExecOptions());
  BindTable(&executor, "a", 20, 4);
  BindTable(&executor, "b", 8, 4);
  auto plan = PlanNode::Join(JoinMethod::kBroadcast, PlanNode::Leaf("a"),
                             PlanNode::Leaf("b"), {{"a_k", "b_k"}});
  auto units = PlanExecutor::Decompose(*plan);
  ASSERT_TRUE(units.ok());
  PlanExecutor::UnitRequest request;
  request.unit = &(*units)[0];
  request.projection = {"a_id", "b_id"};
  auto step = executor.ExecuteOne(request);
  ASSERT_TRUE(step.ok());
  auto rows = ReadAllRows(*step->job.output);
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(rows->empty());
  EXPECT_EQ((*rows)[0].fields().size(), 2u);
}

TEST_F(ExecutorTest, ChainedBroadcastExecutesInOneMapOnlyJob) {
  PlanExecutor executor(&engine_, ExecOptions());
  BindTable(&executor, "probe", 100, 5);
  BindTable(&executor, "s1", 10, 5);
  BindTable(&executor, "s2", 5, 5);
  auto j1 = PlanNode::Join(JoinMethod::kBroadcast, PlanNode::Leaf("probe"),
                           PlanNode::Leaf("s1"), {{"probe_k", "s1_k"}});
  auto j2 = PlanNode::Join(JoinMethod::kBroadcast, std::move(j1),
                           PlanNode::Leaf("s2"), {{"probe_k", "s2_k"}});
  j2->chain_with_left = true;
  auto units = PlanExecutor::Decompose(*j2);
  ASSERT_TRUE(units.ok());
  ASSERT_EQ(units->size(), 1u);
  PlanExecutor::UnitRequest request;
  request.unit = &(*units)[0];
  auto step = executor.ExecuteOne(request);
  ASSERT_TRUE(step.ok()) << step.status().ToString();
  // 100 probe rows x 2 matches in s1 x 1 match in s2.
  EXPECT_EQ(step->job.counters.output_records, 200u);
  EXPECT_EQ(step->job.reduce_tasks_run, 0) << "chain must be map-only";
}

TEST_F(ExecutorTest, BroadcastOomFailsExecution) {
  ClusterConfig config = MakeConfig();
  config.memory_per_task_bytes = 64;  // absurdly small
  MapReduceEngine engine(&dfs_, config);
  PlanExecutor executor(&engine, ExecOptions());
  BindTable(&executor, "a", 50, 5);
  BindTable(&executor, "b", 50, 5);
  auto plan = PlanNode::Join(JoinMethod::kBroadcast, PlanNode::Leaf("a"),
                             PlanNode::Leaf("b"), {{"a_k", "b_k"}});
  auto units = PlanExecutor::Decompose(*plan);
  ASSERT_TRUE(units.ok());
  PlanExecutor::UnitRequest request;
  request.unit = &(*units)[0];
  auto step = executor.ExecuteOne(request);
  ASSERT_FALSE(step.ok());
  EXPECT_EQ(step.status().code(), StatusCode::kOutOfMemory);
}

TEST_F(ExecutorTest, StatsColumnsCollectedOnOutput) {
  PlanExecutor executor(&engine_, ExecOptions());
  BindTable(&executor, "a", 60, 6);
  BindTable(&executor, "b", 12, 6);
  auto plan = PlanNode::Join(JoinMethod::kRepartition, PlanNode::Leaf("a"),
                             PlanNode::Leaf("b"), {{"a_k", "b_k"}});
  auto units = PlanExecutor::Decompose(*plan);
  ASSERT_TRUE(units.ok());
  PlanExecutor::UnitRequest request;
  request.unit = &(*units)[0];
  request.stats_columns = {"a_id"};
  auto step = executor.ExecuteOne(request);
  ASSERT_TRUE(step.ok());
  ASSERT_TRUE(step->stats.columns.count("a_id"));
  EXPECT_NEAR(step->stats.columns.at("a_id").ndv, 60.0, 2.0);
  EXPECT_GT(step->job.observer_overhead_ms, 0);
}

TEST_F(ExecutorTest, UnboundRelationFails) {
  PlanExecutor executor(&engine_, ExecOptions());
  auto plan = PlanNode::Join(JoinMethod::kRepartition, PlanNode::Leaf("a"),
                             PlanNode::Leaf("b"), {{"x", "x"}});
  auto units = PlanExecutor::Decompose(*plan);
  ASSERT_TRUE(units.ok());
  PlanExecutor::UnitRequest request;
  request.unit = &(*units)[0];
  EXPECT_FALSE(executor.ExecuteOne(request).ok());
}

TEST_F(ExecutorTest, MultiUnitPipelineThroughOutputs) {
  PlanExecutor executor(&engine_, ExecOptions());
  BindTable(&executor, "a", 40, 4);
  BindTable(&executor, "b", 8, 4);
  BindTable(&executor, "c", 12, 4);
  // (a *r b) *r c — two units; the second consumes the first's output.
  auto ab = PlanNode::Join(JoinMethod::kRepartition, PlanNode::Leaf("a"),
                           PlanNode::Leaf("b"), {{"a_k", "b_k"}});
  auto plan = PlanNode::Join(JoinMethod::kRepartition, std::move(ab),
                             PlanNode::Leaf("c"), {{"a_k", "c_k"}});
  auto units = PlanExecutor::Decompose(*plan);
  ASSERT_TRUE(units.ok());
  ASSERT_EQ(units->size(), 2u);
  PlanExecutor::UnitRequest first;
  first.unit = &(*units)[0];
  ASSERT_TRUE(executor.ExecuteOne(first).ok());
  PlanExecutor::UnitRequest second;
  second.unit = &(*units)[1];
  auto step = executor.ExecuteOne(second);
  ASSERT_TRUE(step.ok()) << step.status().ToString();
  // 40*2=80 ab-rows, each matching 3 c-rows = 240.
  EXPECT_EQ(step->job.counters.output_records, 240u);
}

// --- aggregates ---

TEST_F(ExecutorTest, GroupByAggregations) {
  std::vector<Value> rows;
  for (int i = 0; i < 90; ++i) {
    rows.push_back(MakeRow({{"g", Value::Int(i % 3)},
                            {"v", Value::Double(i)}}));
  }
  auto file = WriteRows(&dfs_, "/gb_in", rows);
  ASSERT_TRUE(file.ok());
  GroupBySpec spec;
  spec.keys = {"g"};
  spec.aggregates = {{Aggregate::Kind::kCount, "", "n"},
                     {Aggregate::Kind::kSum, "v", "sum_v"},
                     {Aggregate::Kind::kMin, "v", "min_v"},
                     {Aggregate::Kind::kMax, "v", "max_v"},
                     {Aggregate::Kind::kAvg, "v", "avg_v"}};
  auto result = RunGroupBy(&engine_, *file, spec, "/gb_out");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto out = ReadAllRows(*result->output);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  for (const Value& row : *out) {
    int64_t g = row.FindField("g")->int_value();
    EXPECT_EQ(row.FindField("n")->int_value(), 30);
    EXPECT_DOUBLE_EQ(row.FindField("min_v")->AsDouble(),
                     static_cast<double>(g));
    EXPECT_DOUBLE_EQ(row.FindField("max_v")->AsDouble(),
                     static_cast<double>(87 + g));
    EXPECT_NEAR(row.FindField("avg_v")->AsDouble(),
                row.FindField("sum_v")->AsDouble() / 30.0, 1e-9);
  }
}

TEST_F(ExecutorTest, OrderByWithLimitAndDesc) {
  std::vector<Value> rows;
  for (int i = 0; i < 50; ++i) {
    rows.push_back(MakeRow({{"v", Value::Int((i * 37) % 50)}}));
  }
  auto file = WriteRows(&dfs_, "/ob_in", rows);
  ASSERT_TRUE(file.ok());
  OrderBySpec spec;
  spec.keys = {{"v", /*desc=*/true}};
  spec.limit = 10;
  auto result = RunOrderBy(&engine_, *file, spec, "/ob_out");
  ASSERT_TRUE(result.ok());
  auto out = ReadAllRows(*result->output);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 10u);
  EXPECT_EQ((*out)[0].FindField("v")->int_value(), 49);
  for (size_t i = 1; i < out->size(); ++i) {
    EXPECT_GE((*out)[i - 1].FindField("v")->int_value(),
              (*out)[i].FindField("v")->int_value());
  }
}


TEST_F(ExecutorTest, GroupByCombinerMatchesPlainAndShrinksShuffle) {
  // Heavy duplication: 3000 rows over 6 groups. The combiner must produce
  // identical results while shipping orders of magnitude fewer shuffle
  // records.
  std::vector<Value> rows;
  for (int i = 0; i < 3000; ++i) {
    rows.push_back(MakeRow({{"g", Value::Int(i % 6)},
                            {"v", Value::Double(i % 101)},
                            {"w", Value::Int(i % 13)}}));
  }
  auto file = WriteRows(&dfs_, "/cmb_in", rows);
  ASSERT_TRUE(file.ok());
  GroupBySpec spec;
  spec.keys = {"g"};
  spec.aggregates = {{Aggregate::Kind::kCount, "", "n"},
                     {Aggregate::Kind::kSum, "v", "s"},
                     {Aggregate::Kind::kAvg, "v", "a"},
                     {Aggregate::Kind::kMin, "w", "lo"},
                     {Aggregate::Kind::kMax, "w", "hi"}};
  auto plain = RunGroupBy(&engine_, *file, spec, "/cmb_plain",
                          /*use_combiner=*/false);
  auto combined = RunGroupBy(&engine_, *file, spec, "/cmb_comb",
                             /*use_combiner=*/true);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_TRUE(combined.ok()) << combined.status().ToString();

  auto plain_rows = ReadAllRows(*plain->output);
  auto combined_rows = ReadAllRows(*combined->output);
  ASSERT_TRUE(plain_rows.ok());
  ASSERT_TRUE(combined_rows.ok());
  SortRowsForComparison(&*plain_rows);
  SortRowsForComparison(&*combined_rows);
  ASSERT_EQ(plain_rows->size(), combined_rows->size());
  for (size_t i = 0; i < plain_rows->size(); ++i) {
    const Value& p = (*plain_rows)[i];
    const Value& c = (*combined_rows)[i];
    EXPECT_EQ(p.FindField("g")->int_value(), c.FindField("g")->int_value());
    EXPECT_EQ(p.FindField("n")->int_value(), c.FindField("n")->int_value());
    EXPECT_NEAR(p.FindField("s")->AsDouble(), c.FindField("s")->AsDouble(),
                1e-6);
    EXPECT_NEAR(p.FindField("a")->AsDouble(), c.FindField("a")->AsDouble(),
                1e-9);
    EXPECT_EQ(p.FindField("lo")->int_value(),
              c.FindField("lo")->int_value());
    EXPECT_EQ(p.FindField("hi")->int_value(),
              c.FindField("hi")->int_value());
  }
  EXPECT_LT(combined->counters.map_output_records,
            plain->counters.map_output_records / 10)
      << "combiner must collapse per-task duplicates before the shuffle";
  EXPECT_LT(combined->counters.map_output_bytes,
            plain->counters.map_output_bytes);
}

TEST_F(ExecutorTest, GroupByCombinerHandlesAllNullColumn) {
  std::vector<Value> rows;
  for (int i = 0; i < 40; ++i) {
    rows.push_back(MakeRow({{"g", Value::Int(i % 2)}}));  // no "v" at all
  }
  auto file = WriteRows(&dfs_, "/cmb_null", rows);
  ASSERT_TRUE(file.ok());
  GroupBySpec spec;
  spec.keys = {"g"};
  spec.aggregates = {{Aggregate::Kind::kAvg, "v", "a"},
                     {Aggregate::Kind::kMin, "v", "lo"},
                     {Aggregate::Kind::kCount, "", "n"}};
  auto result = RunGroupBy(&engine_, *file, spec, "/cmb_null_out");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto out = ReadAllRows(*result->output);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);
  for (const Value& row : *out) {
    EXPECT_TRUE(row.FindField("a")->is_null());
    EXPECT_TRUE(row.FindField("lo")->is_null());
    EXPECT_EQ(row.FindField("n")->int_value(), 20);
  }
}

}  // namespace
}  // namespace dyno
