// Robustness fuzzing of the binary row codec: random nested values must
// round-trip exactly, and random corruptions of valid encodings must fail
// cleanly (error Status) rather than crash or loop — a property the
// storage layer leans on for every split read.

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "dyno/checkpoint.h"
#include "json/value.h"
#include "mr/engine.h"
#include "storage/dfs.h"

namespace dyno {
namespace {

/// Iterations for one fuzz loop: DYNO_FUZZ_ITERS when set (the fuzz-smoke
/// ctest preset pins a small fixed budget; soak runs can crank it up),
/// otherwise the loop's default.
int FuzzIters(int base) {
  static const int env_iters = [] {
    const char* env = std::getenv("DYNO_FUZZ_ITERS");
    return env != nullptr ? std::atoi(env) : 0;
  }();
  return env_iters > 0 ? env_iters : base;
}

Value RandomValue(Rng* rng, int depth) {
  // Bias away from containers as depth grows so trees stay bounded.
  double container_p = depth >= 4 ? 0.0 : 0.35;
  double dice = rng->NextDouble();
  if (dice < container_p / 2) {
    ArrayElements elems;
    uint64_t n = rng->Uniform(5);
    for (uint64_t i = 0; i < n; ++i) {
      elems.push_back(RandomValue(rng, depth + 1));
    }
    return Value::Array(std::move(elems));
  }
  if (dice < container_p) {
    StructFields fields;
    uint64_t n = rng->Uniform(5);
    for (uint64_t i = 0; i < n; ++i) {
      fields.emplace_back(StrFormat("f%llu", (unsigned long long)i),
                          RandomValue(rng, depth + 1));
    }
    return Value::Struct(std::move(fields));
  }
  switch (rng->Uniform(5)) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Bool(rng->Bernoulli(0.5));
    case 2:
      return Value::Int(static_cast<int64_t>(rng->Next()));
    case 3:
      return Value::Double(rng->NextDouble() * 1e12 - 5e11);
    default: {
      std::string s(rng->Uniform(40), '\0');
      for (char& c : s) c = static_cast<char>(rng->Uniform(256));
      return Value::String(std::move(s));
    }
  }
}

class CodecFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecFuzzTest, RandomValuesRoundTrip) {
  Rng rng(GetParam());
  const int iters = FuzzIters(200);
  for (int i = 0; i < iters; ++i) {
    Value v = RandomValue(&rng, 0);
    std::string buf;
    v.EncodeTo(&buf);
    ASSERT_EQ(buf.size(), v.EncodedSize()) << v.ToString();
    size_t offset = 0;
    auto decoded = Value::Decode(buf, &offset);
    ASSERT_TRUE(decoded.ok()) << v.ToString();
    EXPECT_EQ(offset, buf.size());
    EXPECT_EQ(decoded->Compare(v), 0) << v.ToString();
    EXPECT_EQ(decoded->Hash(), v.Hash());
  }
}

TEST_P(CodecFuzzTest, CorruptedEncodingsFailCleanly) {
  Rng rng(GetParam() ^ 0x5eedULL);
  const int iters = FuzzIters(200);
  for (int i = 0; i < iters; ++i) {
    Value v = RandomValue(&rng, 0);
    std::string buf;
    v.EncodeTo(&buf);
    if (buf.empty()) continue;
    std::string corrupted = buf;
    // Flip a random byte, or truncate, or prepend garbage tag.
    switch (rng.Uniform(3)) {
      case 0:
        corrupted[rng.Uniform(corrupted.size())] =
            static_cast<char>(rng.Uniform(256));
        break;
      case 1:
        corrupted.resize(rng.Uniform(corrupted.size()));
        break;
      default:
        corrupted[0] = static_cast<char>(200 + rng.Uniform(56));
        break;
    }
    size_t offset = 0;
    auto decoded = Value::Decode(corrupted, &offset);
    // Either a clean error or a (different or equal) valid value that
    // consumed a bounded prefix — never a crash, never offset overrun.
    if (decoded.ok()) {
      EXPECT_LE(offset, corrupted.size());
    }
  }
}

TEST_P(CodecFuzzTest, GarbageBytesNeverCrashDecoder) {
  Rng rng(GetParam() * 1337 + 11);
  const int iters = FuzzIters(300);
  for (int i = 0; i < iters; ++i) {
    std::string garbage(rng.Uniform(64), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Uniform(256));
    size_t offset = 0;
    auto decoded = Value::Decode(garbage, &offset);
    if (decoded.ok()) {
      EXPECT_LE(offset, garbage.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

// ---------------------------------------------------------------------------
// DFS blocks and quarantine files under bit rot: every corruption must
// surface as DataLoss, never as a crash or a silently wrong answer.
// ---------------------------------------------------------------------------

class DfsRotFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DfsRotFuzzTest, BitFlippedBlocksAlwaysReadAsDataLoss) {
  Rng rng(GetParam() * 6151 + 7);
  const int iters = FuzzIters(60);
  Dfs dfs;
  std::vector<Value> rows;
  for (int i = 0; i < 200; ++i) rows.push_back(RandomValue(&rng, 2));
  auto file = WriteRows(&dfs, "/fuzz", rows, /*target_split_bytes=*/256);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(ReadAllRows(**file).ok());
  for (int i = 0; i < iters; ++i) {
    size_t split = rng.Uniform((*file)->splits().size());
    size_t size = (*file)->splits()[split].data.size();
    if (size == 0) continue;
    size_t offset = rng.Uniform(size);
    uint8_t mask = static_cast<uint8_t>(1 + rng.Uniform(255));
    ASSERT_TRUE((*file)->CorruptByteForTesting(split, offset, mask).ok());
    // Whatever byte rotted, the CRC catches it before any row is decoded.
    auto read = ReadAllRows(**file);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), StatusCode::kDataLoss)
        << read.status().ToString();
    EXPECT_FALSE(VerifySplit((*file)->splits()[split]).ok());
    // XOR-ing the same mask back restores the block exactly.
    ASSERT_TRUE((*file)->CorruptByteForTesting(split, offset, mask).ok());
    ASSERT_TRUE(ReadAllRows(**file).ok());
  }
}

TEST_P(DfsRotFuzzTest, BitFlippedQuarantineFilesAlwaysReadAsDataLoss) {
  // Quarantine files are written by the engine's skip mode; they get the
  // same CRC framing as every DFS file, so rot in the quarantined records
  // themselves is detected, not re-ingested as garbage.
  Rng rng(GetParam() * 13007 + 3);
  Dfs dfs;
  ClusterConfig config;
  config.job_startup_ms = 500;
  config.map_slots = 4;
  config.reduce_slots = 2;
  config.faults.use_env_defaults = false;
  config.faults.seed = 5;
  config.faults.poison_record_rate = 0.05;
  config.faults.max_skipped_records = -1;
  config.faults.retry_backoff_ms = 100;
  MapReduceEngine engine(&dfs, config);
  std::vector<Value> rows;
  for (int i = 0; i < 300; ++i) {
    rows.push_back(Value::Struct({{"id", Value::Int(i)}}));
  }
  auto input = WriteRows(&dfs, "/in", rows, /*target_split_bytes=*/128);
  ASSERT_TRUE(input.ok());
  JobSpec spec;
  spec.name = "scan";
  spec.output_path = "/out";
  MapInput mi;
  mi.file = *input;
  mi.map_fn = [](const Value& record, MapContext* ctx) -> Status {
    ctx->Output(record);
    return Status::OK();
  };
  spec.inputs = {std::move(mi)};
  auto result = engine.Submit(spec);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok()) << result->status.ToString();
  ASSERT_GT(result->records_quarantined, 0u);
  auto qfile = dfs.Open(result->quarantine_path);
  ASSERT_TRUE(qfile.ok());

  const int iters = FuzzIters(60);
  for (int i = 0; i < iters; ++i) {
    size_t split = rng.Uniform((*qfile)->splits().size());
    size_t size = (*qfile)->splits()[split].data.size();
    if (size == 0) continue;
    size_t offset = rng.Uniform(size);
    uint8_t mask = static_cast<uint8_t>(1 + rng.Uniform(255));
    ASSERT_TRUE((*qfile)->CorruptByteForTesting(split, offset, mask).ok());
    auto read = ReadAllRows(**qfile);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), StatusCode::kDataLoss)
        << read.status().ToString();
    ASSERT_TRUE((*qfile)->CorruptByteForTesting(split, offset, mask).ok());
    ASSERT_TRUE(ReadAllRows(**qfile).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfsRotFuzzTest, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// Reduce spill runs under bit rot (DESIGN.md §6.10): the CRC framing of the
// external-sort run files must turn every corruption into DataLoss on
// read-back — a rotten run fails the attempt, it never merges wrong rows.
// ---------------------------------------------------------------------------

class SpillRunRotFuzzTest : public ::testing::TestWithParam<uint64_t> {};

std::vector<std::pair<Value, Value>> RandomSpillPairs(Rng* rng,
                                                      uint64_t max_pairs) {
  std::vector<std::pair<Value, Value>> pairs;
  uint64_t n = 1 + rng->Uniform(max_pairs);
  for (uint64_t p = 0; p < n; ++p) {
    pairs.emplace_back(RandomValue(rng, 3), RandomValue(rng, 2));
  }
  return pairs;
}

TEST_P(SpillRunRotFuzzTest, SpillRunsRoundTripExactly) {
  Rng rng(GetParam() * 2713 + 5);
  const int iters = FuzzIters(80);
  for (int i = 0; i < iters; ++i) {
    auto pairs = RandomSpillPairs(&rng, 40);
    Split run = EncodeSpillRun(pairs);
    ASSERT_TRUE(VerifySplit(run).ok());
    auto decoded = DecodeSpillRun(run);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_EQ(decoded->size(), pairs.size());
    for (size_t p = 0; p < pairs.size(); ++p) {
      EXPECT_EQ((*decoded)[p].first.Compare(pairs[p].first), 0) << p;
      EXPECT_EQ((*decoded)[p].second.Compare(pairs[p].second), 0) << p;
    }
  }
}

TEST_P(SpillRunRotFuzzTest, BitFlippedSpillRunsAlwaysReadAsDataLoss) {
  Rng rng(GetParam() * 9973 + 11);
  const int iters = FuzzIters(120);
  for (int i = 0; i < iters; ++i) {
    Split run = EncodeSpillRun(RandomSpillPairs(&rng, 30));
    if (run.data.empty()) continue;
    Split bad = run;
    bad.data[rng.Uniform(bad.data.size())] ^=
        static_cast<char>(1 + rng.Uniform(255));
    auto decoded = DecodeSpillRun(bad);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss)
        << decoded.status().ToString();
  }
}

TEST_P(SpillRunRotFuzzTest, TruncatedSpillRunsAlwaysReadAsDataLoss) {
  Rng rng(GetParam() * 5861 + 23);
  const int iters = FuzzIters(120);
  for (int i = 0; i < iters; ++i) {
    Split run = EncodeSpillRun(RandomSpillPairs(&rng, 30));
    if (run.data.empty()) continue;
    Split bad = run;
    bad.data.resize(rng.Uniform(bad.data.size()));
    auto decoded = DecodeSpillRun(bad);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss)
        << decoded.status().ToString();
  }
}

TEST_P(SpillRunRotFuzzTest, OddRecordCountIsDataLossNotDanglingRead) {
  // A frame whose CRC verifies but whose record count is odd (torn between
  // a key and its value) must be rejected before any pair is surfaced.
  Rng rng(GetParam() * 769 + 1);
  const int iters = FuzzIters(60);
  for (int i = 0; i < iters; ++i) {
    auto pairs = RandomSpillPairs(&rng, 20);
    Split run = EncodeSpillRun(pairs);
    Split torn = run;
    torn.num_records = run.num_records - 1;  // CRC still matches data.
    auto decoded = DecodeSpillRun(torn);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss)
        << decoded.status().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpillRunRotFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8));

/// A random but valid CheckpointManifest (driver recovery state).
CheckpointManifest RandomManifest(Rng* rng) {
  CheckpointManifest manifest;
  manifest.temp_counter = static_cast<int64_t>(rng->Uniform(1000));
  uint64_t leaves = rng->Uniform(4);
  for (uint64_t l = 0; l < leaves; ++l) {
    manifest.leaf_signatures.emplace(
        StrFormat("a%llu", (unsigned long long)l),
        StrFormat("table%llu|filter", (unsigned long long)rng->Uniform(8)));
  }
  uint64_t entries = rng->Uniform(4);
  for (uint64_t e = 0; e < entries; ++e) {
    CheckpointEntry entry;
    entry.signature = StrFormat("join(sig%llu)", (unsigned long long)e);
    entry.relation_id = StrFormat("t%llu", (unsigned long long)rng->Uniform(50));
    entry.path = StrFormat("/tmp/dyno/e%llu_out", (unsigned long long)e);
    uint64_t covers = 1 + rng->Uniform(4);
    for (uint64_t c = 0; c < covers; ++c) {
      entry.covered.push_back(StrFormat("a%llu", (unsigned long long)c));
    }
    entry.stats.cardinality = rng->NextDouble() * 1e9;
    entry.stats.avg_record_size = 1.0 + rng->NextDouble() * 500;
    entry.stats.from_sample = rng->Bernoulli(0.5);
    uint64_t cols = rng->Uniform(4);
    for (uint64_t c = 0; c < cols; ++c) {
      ColumnStats cs;
      cs.ndv = rng->NextDouble() * 1e6;
      if (rng->Bernoulli(0.5)) cs.min_value = RandomValue(rng, 4);
      if (rng->Bernoulli(0.5)) cs.max_value = RandomValue(rng, 4);
      entry.stats.columns[StrFormat("c%llu", (unsigned long long)c)] = cs;
    }
    manifest.entries.push_back(entry);
  }
  return manifest;
}

class ManifestFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ManifestFuzzTest, RandomManifestsRoundTrip) {
  Rng rng(GetParam() * 7919 + 3);
  const int iters = FuzzIters(100);
  for (int i = 0; i < iters; ++i) {
    CheckpointManifest manifest = RandomManifest(&rng);
    // Through the Value layer and the binary codec, as WriteTo/ReadFrom do.
    std::string buf;
    manifest.ToValue().EncodeTo(&buf);
    size_t offset = 0;
    auto decoded = Value::Decode(buf, &offset);
    ASSERT_TRUE(decoded.ok());
    auto loaded = CheckpointManifest::FromValue(*decoded);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->temp_counter, manifest.temp_counter);
    EXPECT_EQ(loaded->leaf_signatures, manifest.leaf_signatures);
    ASSERT_EQ(loaded->entries.size(), manifest.entries.size());
    for (size_t e = 0; e < manifest.entries.size(); ++e) {
      const CheckpointEntry& want = manifest.entries[e];
      const CheckpointEntry& got = loaded->entries[e];
      EXPECT_EQ(got.signature, want.signature);
      EXPECT_EQ(got.relation_id, want.relation_id);
      EXPECT_EQ(got.path, want.path);
      EXPECT_EQ(got.covered, want.covered);
      EXPECT_EQ(got.stats.cardinality, want.stats.cardinality);
      EXPECT_EQ(got.stats.from_sample, want.stats.from_sample);
      ASSERT_EQ(got.stats.columns.size(), want.stats.columns.size());
      for (const auto& [name, cs] : want.stats.columns) {
        auto it = got.stats.columns.find(name);
        ASSERT_NE(it, got.stats.columns.end()) << name;
        EXPECT_EQ(it->second.ndv, cs.ndv);
        ASSERT_EQ(it->second.min_value.has_value(), cs.min_value.has_value());
        if (cs.min_value.has_value()) {
          EXPECT_EQ(it->second.min_value->Compare(*cs.min_value), 0);
        }
        ASSERT_EQ(it->second.max_value.has_value(), cs.max_value.has_value());
        if (cs.max_value.has_value()) {
          EXPECT_EQ(it->second.max_value->Compare(*cs.max_value), 0);
        }
      }
    }
  }
}

TEST_P(ManifestFuzzTest, CorruptedManifestsFailCleanlyNeverCrash) {
  // A corrupted checkpoint must degrade to "re-run from scratch": FromValue
  // returns an error (or, when the corruption leaves a structurally valid
  // manifest, a manifest) — it never crashes the resuming driver.
  Rng rng(GetParam() * 104729 + 17);
  const int iters = FuzzIters(150);
  for (int i = 0; i < iters; ++i) {
    CheckpointManifest manifest = RandomManifest(&rng);
    std::string buf;
    manifest.ToValue().EncodeTo(&buf);
    if (buf.empty()) continue;
    std::string corrupted = buf;
    switch (rng.Uniform(3)) {
      case 0:
        corrupted[rng.Uniform(corrupted.size())] =
            static_cast<char>(rng.Uniform(256));
        break;
      case 1:
        corrupted.resize(rng.Uniform(corrupted.size()));
        break;
      default: {
        uint64_t flips = 1 + rng.Uniform(8);
        for (uint64_t f = 0; f < flips; ++f) {
          corrupted[rng.Uniform(corrupted.size())] ^=
              static_cast<char>(1 + rng.Uniform(255));
        }
        break;
      }
    }
    size_t offset = 0;
    auto decoded = Value::Decode(corrupted, &offset);
    if (!decoded.ok()) continue;  // codec rejected it first — fine
    auto loaded = CheckpointManifest::FromValue(*decoded);
    if (!loaded.ok()) {
      EXPECT_NE(loaded.status().ToString().find("checkpoint manifest"),
                std::string::npos)
          << loaded.status().ToString();
    }
  }
}

TEST_P(ManifestFuzzTest, ArbitraryValuesNeverCrashFromValue) {
  Rng rng(GetParam() * 31337 + 29);
  const int iters = FuzzIters(200);
  for (int i = 0; i < iters; ++i) {
    Value v = RandomValue(&rng, 0);
    auto loaded = CheckpointManifest::FromValue(v);
    // Random values are essentially never valid manifests; either way the
    // call must return, not crash.
    (void)loaded;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ManifestFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

TEST(CodecFuzzTest, DeepNestingBoundedRecursionRoundTrips) {
  // A 64-deep array nest: encode/decode must handle it (recursion depth is
  // proportional to nesting; this guards against accidental quadratic or
  // overflow behaviour at plausible depths).
  Value v = Value::Int(7);
  for (int i = 0; i < 64; ++i) v = Value::Array({v});
  std::string buf;
  v.EncodeTo(&buf);
  size_t offset = 0;
  auto decoded = Value::Decode(buf, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->Compare(v), 0);
}

}  // namespace
}  // namespace dyno
