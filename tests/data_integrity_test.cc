// End-to-end data integrity (DESIGN.md §6.5): checksummed DFS blocks with
// replica re-reads, checksummed shuffle fetches with bounded re-fetch,
// bad-record quarantine with a skip-mode budget, and the driver-side
// recovery pieces (two-generation checkpoint manifests, resume signature
// verification). The tests pit every corrupted run against a clean oracle:
// corruption may cost time, but it must never change a byte of output.

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dyno/checkpoint.h"
#include "dyno/driver.h"
#include "expr/expr.h"
#include "mr/engine.h"
#include "stats/stats_store.h"
#include "storage/catalog.h"
#include "storage/dfs.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

namespace dyno {
namespace {

using ScriptedCorruption = FaultConfig::ScriptedCorruption;

Value Row(int64_t id, int64_t group) {
  return MakeRow({{"id", Value::Int(id)}, {"g", Value::Int(group)}});
}

std::vector<Value> MakeRows(int n) {
  std::vector<Value> rows;
  for (int i = 0; i < n; ++i) rows.push_back(Row(i, i % 7));
  return rows;
}

std::shared_ptr<DfsFile> MakeInput(Dfs* dfs, const std::vector<Value>& rows,
                                   const std::string& path) {
  auto file = WriteRows(dfs, path, rows, /*target_split_bytes=*/128);
  EXPECT_TRUE(file.ok());
  return *file;
}

std::string FileBytes(const DfsFile& file) {
  std::string all;
  for (const Split& split : file.splits()) all += split.data;
  return all;
}

ClusterConfig BaseConfig() {
  ClusterConfig config;
  config.job_startup_ms = 1000;
  config.map_slots = 4;
  config.reduce_slots = 2;
  // Pin fault settings: the corruption ctest preset's env vars must not
  // perturb the scripted scenarios below.
  config.faults.use_env_defaults = false;
  config.faults.retry_backoff_ms = 100;
  return config;
}

JobSpec CountByGroup(std::shared_ptr<DfsFile> input,
                     const std::string& out_path) {
  JobSpec spec;
  spec.name = "count-by-group";
  spec.output_path = out_path;
  MapInput mi;
  mi.file = std::move(input);
  mi.map_fn = [](const Value& record, MapContext* ctx) -> Status {
    ctx->Emit(*record.FindField("g"), Value::Int(1));
    return Status::OK();
  };
  spec.inputs = {std::move(mi)};
  spec.reduce_fn = [](const Value& key, const std::vector<Value>& values,
                      ReduceContext* ctx) -> Status {
    ctx->Output(MakeRow(
        {{"g", key},
         {"n", Value::Int(static_cast<int64_t>(values.size()))}}));
    return Status::OK();
  };
  return spec;
}

JobSpec IdentityScan(std::shared_ptr<DfsFile> input,
                     const std::string& out_path) {
  JobSpec spec;
  spec.name = "identity-scan";
  spec.output_path = out_path;
  MapInput mi;
  mi.file = std::move(input);
  mi.map_fn = [](const Value& record, MapContext* ctx) -> Status {
    ctx->Output(record);
    return Status::OK();
  };
  spec.inputs = {std::move(mi)};
  return spec;
}

/// Runs `make_spec` on a fresh cluster with `faults` and returns the result.
JobResult RunJob(const FaultConfig& faults, bool reduce_job,
                 int num_reduce_tasks = 0) {
  Dfs dfs;
  ClusterConfig config = BaseConfig();
  config.faults = faults;
  config.faults.use_env_defaults = false;
  config.faults.retry_backoff_ms = 100;
  MapReduceEngine engine(&dfs, config);
  auto input = MakeInput(&dfs, MakeRows(400), "/in");
  JobSpec spec =
      reduce_job ? CountByGroup(input, "/out") : IdentityScan(input, "/out");
  spec.num_reduce_tasks = num_reduce_tasks;
  auto result = engine.Submit(spec);
  EXPECT_TRUE(result.ok());
  return std::move(*result);
}

// ---------------------------------------------------------------------------
// Block corruption: replica re-reads, attempt retry, permanent DataLoss.
// ---------------------------------------------------------------------------

TEST(BlockCorruptionTest, CorruptReplicasAreHealedByRereadByteIdentically) {
  FaultConfig clean;
  JobResult reference = RunJob(clean, /*reduce_job=*/true);
  ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();

  FaultConfig faults;
  faults.scripted_corruptions = {
      {ScriptedCorruption::Target::kBlock, "count-by-group", /*task_id=*/0,
       /*attempt=*/1, /*count=*/2}};
  JobResult healed = RunJob(faults, /*reduce_job=*/true);
  ASSERT_TRUE(healed.status.ok()) << healed.status.ToString();

  // Two bad replicas out of three: the attempt re-reads and succeeds
  // without a retry, paying one extra block read per bad copy.
  EXPECT_EQ(healed.block_corruptions, 2);
  EXPECT_EQ(healed.task_retries, 0);
  EXPECT_GT(healed.Elapsed(), reference.Elapsed());
  ASSERT_NE(healed.output, nullptr);
  EXPECT_EQ(FileBytes(*healed.output), FileBytes(*reference.output))
      << "healed corruption must not change a byte of output";
  EXPECT_EQ(healed.counters.map_input_records,
            reference.counters.map_input_records);
}

TEST(BlockCorruptionTest, AllReplicasCorruptFailsTheAttemptThenRetryHeals) {
  FaultConfig clean;
  JobResult reference = RunJob(clean, /*reduce_job=*/true);
  ASSERT_TRUE(reference.status.ok());

  FaultConfig faults;
  faults.scripted_corruptions = {
      {ScriptedCorruption::Target::kBlock, "count-by-group", /*task_id=*/0,
       /*attempt=*/1, /*count=*/DfsFile::kDefaultReplicas}};
  JobResult retried = RunJob(faults, /*reduce_job=*/true);
  ASSERT_TRUE(retried.status.ok()) << retried.status.ToString();

  // Every replica read failed its checksum: the attempt dies with DataLoss
  // and the PR2 task-retry ladder re-runs it (attempt 2 reads clean).
  EXPECT_EQ(retried.block_corruptions, DfsFile::kDefaultReplicas);
  EXPECT_GE(retried.task_retries, 1);
  ASSERT_NE(retried.output, nullptr);
  EXPECT_EQ(FileBytes(*retried.output), FileBytes(*reference.output));
}

TEST(BlockCorruptionTest, PersistentCorruptionFailsTheJobWithDataLoss) {
  FaultConfig faults;
  faults.max_task_attempts = 2;
  faults.scripted_corruptions = {
      {ScriptedCorruption::Target::kBlock, "count-by-group", 0, /*attempt=*/1,
       DfsFile::kDefaultReplicas},
      {ScriptedCorruption::Target::kBlock, "count-by-group", 0, /*attempt=*/2,
       DfsFile::kDefaultReplicas}};
  JobResult doomed = RunJob(faults, /*reduce_job=*/true);
  EXPECT_FALSE(doomed.status.ok());
  EXPECT_EQ(doomed.status.code(), StatusCode::kDataLoss)
      << doomed.status.ToString();
  EXPECT_EQ(doomed.output, nullptr);
}

TEST(BlockCorruptionTest, AtRestBitRotSurfacesAsDataLossNeverWrongAnswer) {
  // Fault model OFF: a genuinely rotten stored byte must still be caught by
  // the mandatory read-side checksum verification, as DataLoss — the job
  // must never silently produce output from the garbled bytes.
  Dfs dfs;
  MapReduceEngine engine(&dfs, BaseConfig());
  auto input = MakeInput(&dfs, MakeRows(400), "/in");
  ASSERT_TRUE(input->CorruptByteForTesting(/*split_index=*/0,
                                           /*byte_offset=*/3, /*mask=*/0x40)
                  .ok());
  auto result = engine.Submit(CountByGroup(input, "/out"));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->status.ok());
  EXPECT_EQ(result->status.code(), StatusCode::kDataLoss)
      << result->status.ToString();
  EXPECT_EQ(result->output, nullptr);
}

// ---------------------------------------------------------------------------
// Shuffle corruption: in-attempt re-fetch, attempt retry, permanent loss.
// ---------------------------------------------------------------------------

TEST(ShuffleCorruptionTest, ChecksumMismatchRefetchesWithinTheAttempt) {
  FaultConfig clean;
  JobResult reference = RunJob(clean, /*reduce_job=*/true);
  ASSERT_TRUE(reference.status.ok());

  FaultConfig faults;
  faults.scripted_corruptions = {
      {ScriptedCorruption::Target::kShuffle, "count-by-group", /*task_id=*/0,
       /*attempt=*/1, /*count=*/2}};
  JobResult healed = RunJob(faults, /*reduce_job=*/true);
  ASSERT_TRUE(healed.status.ok()) << healed.status.ToString();

  // Two corrupt fetches, budget of max_shuffle_fetch_retries (3): both are
  // re-fetched inside the attempt, reusing the shuffle-retry machinery.
  EXPECT_EQ(healed.checksum_refetches, 2);
  EXPECT_EQ(healed.shuffle_fetch_retries, 2);
  EXPECT_EQ(healed.task_retries, 0);
  EXPECT_GT(healed.Elapsed(), reference.Elapsed());
  ASSERT_NE(healed.output, nullptr);
  EXPECT_EQ(FileBytes(*healed.output), FileBytes(*reference.output));
}

TEST(ShuffleCorruptionTest, RefetchExhaustionFailsTheAttemptThenRetryHeals) {
  FaultConfig clean;
  JobResult reference = RunJob(clean, /*reduce_job=*/true);
  ASSERT_TRUE(reference.status.ok());

  FaultConfig faults;
  faults.max_shuffle_fetch_retries = 3;
  // 4 corrupt fetches > 1 try + 3 re-fetches: the attempt exhausts its
  // budget, fails with DataLoss, and the task-retry ladder takes over.
  faults.scripted_corruptions = {
      {ScriptedCorruption::Target::kShuffle, "count-by-group", /*task_id=*/0,
       /*attempt=*/1, /*count=*/4}};
  JobResult retried = RunJob(faults, /*reduce_job=*/true);
  ASSERT_TRUE(retried.status.ok()) << retried.status.ToString();
  EXPECT_EQ(retried.checksum_refetches, 3);
  EXPECT_GE(retried.task_retries, 1);
  ASSERT_NE(retried.output, nullptr);
  EXPECT_EQ(FileBytes(*retried.output), FileBytes(*reference.output));
}

TEST(ShuffleCorruptionTest, PersistentShuffleCorruptionIsDataLoss) {
  FaultConfig faults;
  faults.max_task_attempts = 2;
  faults.scripted_corruptions = {
      {ScriptedCorruption::Target::kShuffle, "count-by-group", 0,
       /*attempt=*/1, /*count=*/4},
      {ScriptedCorruption::Target::kShuffle, "count-by-group", 0,
       /*attempt=*/2, /*count=*/4}};
  JobResult doomed = RunJob(faults, /*reduce_job=*/true);
  EXPECT_FALSE(doomed.status.ok());
  EXPECT_EQ(doomed.status.code(), StatusCode::kDataLoss)
      << doomed.status.ToString();
  EXPECT_EQ(doomed.output, nullptr);
}

TEST(ShuffleCorruptionTest, RandomCorruptionRatesStillYieldCleanOutput) {
  FaultConfig clean;
  JobResult reference = RunJob(clean, /*reduce_job=*/true,
                               /*num_reduce_tasks=*/8);
  ASSERT_TRUE(reference.status.ok());

  FaultConfig faults;
  faults.seed = 17;
  faults.block_corruption_rate = 0.05;
  faults.shuffle_corruption_rate = 0.5;
  JobResult noisy = RunJob(faults, /*reduce_job=*/true,
                           /*num_reduce_tasks=*/8);
  ASSERT_TRUE(noisy.status.ok()) << noisy.status.ToString();
  EXPECT_GT(noisy.block_corruptions, 0)
      << "the Bernoulli block-corruption stream must fire at this rate";
  EXPECT_GT(noisy.checksum_refetches, 0)
      << "the Bernoulli shuffle-corruption stream must fire at this rate";
  ASSERT_NE(noisy.output, nullptr);
  EXPECT_EQ(FileBytes(*noisy.output), FileBytes(*reference.output));
  EXPECT_EQ(noisy.counters.output_records, reference.counters.output_records);
}

// ---------------------------------------------------------------------------
// Poison records: skip mode, quarantine file, budget exhaustion.
// ---------------------------------------------------------------------------

TEST(QuarantineTest, PoisonRecordsArePartitionedExactlyIntoQuarantine) {
  Dfs dfs;
  ClusterConfig config = BaseConfig();
  config.faults.seed = 5;
  config.faults.poison_record_rate = 0.03;
  config.faults.max_skipped_records = -1;  // unlimited
  MapReduceEngine engine(&dfs, config);
  std::vector<Value> rows = MakeRows(400);
  auto input = MakeInput(&dfs, rows, "/in");

  auto result = engine.Submit(IdentityScan(input, "/out"));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok()) << result->status.ToString();
  ASSERT_GT(result->records_quarantined, 0u)
      << "no poison record fired at this rate/seed";
  // Two failed attempts per poisoned task before skip mode kicks in.
  EXPECT_GE(result->task_retries, 2);

  // The quarantine file holds exactly the poison records...
  ASSERT_EQ(result->quarantine_path, "/out.quarantine");
  auto qfile = dfs.Open(result->quarantine_path);
  ASSERT_TRUE(qfile.ok());
  std::vector<Value> quarantined = MustReadAll(**qfile);
  ASSERT_EQ(quarantined.size(), result->records_quarantined);

  // ...and output ∪ quarantine reassembles the input exactly: every record
  // is either processed or quarantined, never dropped, never duplicated.
  std::vector<Value> output = MustReadAll(*result->output);
  EXPECT_EQ(output.size() + quarantined.size(), rows.size());
  EXPECT_EQ(result->counters.output_records,
            rows.size() - result->records_quarantined);
  std::vector<Value> reunion = output;
  reunion.insert(reunion.end(), quarantined.begin(), quarantined.end());
  std::vector<Value> want = rows;
  SortRowsForComparison(&reunion);
  SortRowsForComparison(&want);
  ASSERT_EQ(reunion.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(reunion[i].Compare(want[i]), 0) << "row " << i;
  }
}

TEST(QuarantineTest, OutputAndStatsMatchOracleRunOnPrePoisonedData) {
  // Acceptance oracle: a poisoned run must produce byte-for-byte the rows —
  // and the observed statistics — of a clean run over the input with the
  // quarantined records already removed.
  Dfs dfs;
  ClusterConfig config = BaseConfig();
  config.faults.seed = 5;
  config.faults.poison_record_rate = 0.03;
  config.faults.max_skipped_records = 100;
  MapReduceEngine engine(&dfs, config);
  std::vector<Value> rows = MakeRows(400);
  auto input = MakeInput(&dfs, rows, "/in");

  uint64_t observed = 0;
  JobSpec spec = CountByGroup(input, "/out");
  spec.output_observer = [&observed](const Value&) { ++observed; };
  auto poisoned = engine.Submit(spec);
  ASSERT_TRUE(poisoned.ok());
  ASSERT_TRUE(poisoned->status.ok()) << poisoned->status.ToString();
  ASSERT_GT(poisoned->records_quarantined, 0u);

  auto qfile = dfs.Open(poisoned->quarantine_path);
  ASSERT_TRUE(qfile.ok());
  std::multiset<int64_t> poison_ids;
  for (const Value& record : MustReadAll(**qfile)) {
    poison_ids.insert(record.FindField("id")->int_value());
  }

  // Oracle: same job, clean cluster, input minus exactly those records.
  Dfs oracle_dfs;
  MapReduceEngine oracle_engine(&oracle_dfs, BaseConfig());
  std::vector<Value> pruned;
  for (const Value& row : rows) {
    auto it = poison_ids.find(row.FindField("id")->int_value());
    if (it != poison_ids.end()) {
      poison_ids.erase(it);
      continue;
    }
    pruned.push_back(row);
  }
  EXPECT_TRUE(poison_ids.empty()) << "quarantined a record not in the input";
  auto oracle_input = MakeInput(&oracle_dfs, pruned, "/in");
  uint64_t oracle_observed = 0;
  JobSpec oracle_spec = CountByGroup(oracle_input, "/out");
  oracle_spec.output_observer = [&oracle_observed](const Value&) {
    ++oracle_observed;
  };
  auto oracle = oracle_engine.Submit(oracle_spec);
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(oracle->status.ok()) << oracle->status.ToString();

  std::vector<Value> got = MustReadAll(*poisoned->output);
  std::vector<Value> want = MustReadAll(*oracle->output);
  SortRowsForComparison(&got);
  SortRowsForComparison(&want);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].Compare(want[i]), 0) << "row " << i;
  }
  EXPECT_EQ(poisoned->counters.output_records,
            oracle->counters.output_records);
  // Observed stats count quarantined records as excluded: the observer saw
  // exactly what it would have seen on the pre-poisoned data.
  EXPECT_EQ(observed, oracle_observed);
}

TEST(QuarantineTest, ExceedingTheSkipBudgetIsPermanentDataLoss) {
  FaultConfig faults;
  faults.seed = 5;
  faults.poison_record_rate = 0.2;
  faults.max_skipped_records = 2;
  JobResult doomed = RunJob(faults, /*reduce_job=*/false);
  EXPECT_FALSE(doomed.status.ok());
  EXPECT_EQ(doomed.status.code(), StatusCode::kDataLoss)
      << doomed.status.ToString();
  EXPECT_NE(doomed.status.ToString().find("max_skipped_records"),
            std::string::npos)
      << doomed.status.ToString();
  EXPECT_EQ(doomed.output, nullptr);
}

// ---------------------------------------------------------------------------
// Checkpoint manifest: CRC framing + previous-generation fallback.
// ---------------------------------------------------------------------------

TableStats SampleStats(double card) {
  TableStats stats;
  stats.cardinality = card;
  stats.avg_record_size = 21.0;
  stats.from_sample = true;
  return stats;
}

TEST(ManifestFallbackTest, TornLiveManifestFallsBackToPreviousGeneration) {
  Dfs dfs;
  CheckpointManifest manifest;
  manifest.temp_counter = 1;
  CheckpointEntry entry;
  entry.signature = "join(a,b)";
  entry.relation_id = "t1";
  entry.path = "/tmp/dyno/e1_t1";
  entry.covered = {"a", "b"};
  entry.stats = SampleStats(10.0);
  manifest.entries.push_back(entry);
  ASSERT_TRUE(manifest.WriteTo(&dfs, "/ckpt").ok());

  // Second write: the first generation is preserved as /ckpt.prev.
  manifest.temp_counter = 2;
  ASSERT_TRUE(manifest.WriteTo(&dfs, "/ckpt").ok());
  ASSERT_TRUE(dfs.Exists("/ckpt" + std::string(CheckpointManifest::kPrevSuffix)));

  // Bit-rot the live manifest: the CRC framing turns it into DataLoss...
  auto live = dfs.Open("/ckpt");
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE((*live)->CorruptByteForTesting(0, 5, 0x10).ok());
  auto direct = CheckpointManifest::ReadFrom(dfs, "/ckpt");
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.status().code(), StatusCode::kDataLoss)
      << direct.status().ToString();

  // ...and the fallback recovers the previous generation.
  bool used_fallback = false;
  auto recovered =
      CheckpointManifest::ReadWithFallback(dfs, "/ckpt", &used_fallback);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(used_fallback);
  EXPECT_EQ(recovered->temp_counter, 1);
  ASSERT_EQ(recovered->entries.size(), 1u);
  EXPECT_EQ(recovered->entries[0].signature, "join(a,b)");

  // Both generations gone reports the live manifest's own error.
  ASSERT_TRUE(
      dfs.Delete("/ckpt" + std::string(CheckpointManifest::kPrevSuffix)).ok());
  auto lost = CheckpointManifest::ReadWithFallback(dfs, "/ckpt", &used_fallback);
  EXPECT_FALSE(lost.ok());
  EXPECT_FALSE(used_fallback);
  EXPECT_EQ(lost.status().code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Driver: manifest fallback on resume, and resume signature verification.
// ---------------------------------------------------------------------------

class DriverIntegrityTest : public ::testing::Test {
 protected:
  static ClusterConfig MakeConfig() {
    ClusterConfig config;
    config.job_startup_ms = 2000;
    config.map_slots = 20;
    config.reduce_slots = 10;
    config.memory_per_task_bytes = 64 * 1024;
    config.faults.use_env_defaults = false;
    return config;
  }

  static DynoOptions MakeOptions() {
    DynoOptions options;
    options.pilot.k = 256;
    options.pilot.mode = PilotRunOptions::Mode::kParallel;
    options.cost.max_memory_bytes = MakeConfig().memory_per_task_bytes;
    options.cost.memory_factor = 1.5;
    options.checkpoint_path = "/ckpt/query";
    return options;
  }

  struct Site {
    Dfs dfs;
    Catalog catalog{&dfs};
    MapReduceEngine engine{&dfs, MakeConfig()};
    Site() {
      TpchConfig config;
      config.scale = 0.0005;
      config.split_bytes = 8 * 1024;
      EXPECT_TRUE(GenerateTpch(&catalog, config).ok());
    }
  };
};

TEST_F(DriverIntegrityTest, ResumeFallsBackToPreviousManifestGeneration) {
  Query query = MakeTpchQ10();
  const std::string prev_path =
      MakeOptions().checkpoint_path + CheckpointManifest::kPrevSuffix;

  // Reference: the same query, never interrupted.
  Site ref_site;
  StatsStore ref_store;
  DynoDriver ref_driver(&ref_site.engine, &ref_site.catalog, &ref_store,
                        MakeOptions());
  auto ref_report = ref_driver.Execute(query);
  ASSERT_TRUE(ref_report.ok()) << ref_report.status().ToString();
  ASSERT_NE(ref_report->result, nullptr);
  const std::string ref_bytes = FileBytes(*ref_report->result);

  // Kill the driver late enough that the manifest was rewritten at least
  // once (so a previous generation exists on the DFS).
  std::unique_ptr<Site> site;
  bool staged = false;
  for (int abort_after = 2; abort_after <= 6 && !staged; ++abort_after) {
    site = std::make_unique<Site>();
    StatsStore store;
    DynoOptions kill = MakeOptions();
    kill.abort_after_jobs = abort_after;
    DynoDriver driver(&site->engine, &site->catalog, &store, kill);
    auto report = driver.Execute(query);
    staged = !report.ok() &&
             report.status().code() == StatusCode::kCancelled &&
             site->dfs.Exists(prev_path);
  }
  ASSERT_TRUE(staged) << "no kill point left a two-generation checkpoint";

  // Tear the live manifest (a mid-rewrite death): its CRC no longer checks.
  auto live = site->dfs.Open(MakeOptions().checkpoint_path);
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE((*live)->CorruptByteForTesting(0, 7, 0x20).ok());

  StatsStore resumed_store;
  DynoDriver resumed(&site->engine, &site->catalog, &resumed_store,
                     MakeOptions());
  auto resumed_report = resumed.Resume(query);
  ASSERT_TRUE(resumed_report.ok()) << resumed_report.status().ToString();
  EXPECT_EQ(resumed_report->manifest_fallbacks, 1);
  EXPECT_GT(resumed_report->resumed_steps, 0)
      << "the previous generation's steps must be reused";
  ASSERT_NE(resumed_report->result, nullptr);
  EXPECT_EQ(FileBytes(*resumed_report->result), ref_bytes)
      << "resume via the fallback generation must still be byte-identical";
  EXPECT_EQ(resumed_report->result_records, ref_report->result_records);
}

TEST_F(DriverIntegrityTest, ResumeRefusesWhenQueryTextChanged) {
  Site site;
  StatsStore store;
  DynoDriver driver(&site.engine, &site.catalog, &store, MakeOptions());
  auto report = driver.Execute(MakeTpchQ10());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Same aliases, different predicate constant: the leaf signature drifts,
  // so the checkpointed subtrees no longer describe this query.
  Query changed = MakeTpchQ10();
  changed.join_block.predicates[1] = {Eq(Col("l_returnflag"),
                                         LitString("N")),
                                      {"l"}};
  StatsStore changed_store;
  DynoDriver changed_driver(&site.engine, &site.catalog, &changed_store,
                            MakeOptions());
  auto refused = changed_driver.Resume(changed);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument)
      << refused.status().ToString();
  EXPECT_NE(refused.status().ToString().find("leaf"), std::string::npos)
      << refused.status().ToString();

  // A structurally different query (other aliases entirely) is refused too.
  StatsStore other_store;
  DynoDriver other_driver(&site.engine, &site.catalog, &other_store,
                          MakeOptions());
  auto other = other_driver.Resume(MakeTpchQ2());
  ASSERT_FALSE(other.ok());
  EXPECT_EQ(other.status().code(), StatusCode::kInvalidArgument)
      << other.status().ToString();

  // The unchanged query still resumes fine against the same manifest.
  StatsStore same_store;
  DynoDriver same_driver(&site.engine, &site.catalog, &same_store,
                         MakeOptions());
  auto same = same_driver.Resume(MakeTpchQ10());
  EXPECT_TRUE(same.ok()) << same.status().ToString();
}

}  // namespace
}  // namespace dyno
