// Tests for the paper's extension features: CORDS-lite correlation
// discovery, rank-based predicate reordering, conditional re-optimization,
// the adaptive broadcast→repartition fallback (§8 dynamic join), and
// multi-block queries (§5.1).

#include <gtest/gtest.h>

#include "dyno/driver.h"
#include "lang/parser.h"
#include "pilot/predicate_order.h"
#include "stats/cords.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"
#include "tpch/restaurant.h"

namespace dyno {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  ExtensionsTest() : catalog_(&dfs_), engine_(&dfs_, MakeConfig()) {
    TpchConfig config;
    config.scale = 0.0005;
    config.split_bytes = 8 * 1024;
    EXPECT_TRUE(GenerateTpch(&catalog_, config).ok());
  }

  static ClusterConfig MakeConfig() {
    ClusterConfig config;
    config.job_startup_ms = 2000;
    config.memory_per_task_bytes = 64 * 1024;
    return config;
  }

  DynoOptions MakeOptions() {
    DynoOptions options;
    options.pilot.k = 256;
    options.cost.max_memory_bytes = MakeConfig().memory_per_task_bytes;
    return options;
  }

  Dfs dfs_;
  Catalog catalog_;
  MapReduceEngine engine_;
  StatsStore store_;
};

// --- CORDS-lite ---

TEST_F(ExtensionsTest, CordsFindsChannelClerkGroupDependency) {
  CordsOptions options;
  options.sample_rows = 700;
  auto findings = DetectCorrelations(
      &catalog_, "orders",
      {"o_channel", "o_clerk_group", "o_orderdate", "o_custkey"}, options);
  ASSERT_TRUE(findings.ok()) << findings.status().ToString();
  // The injected soft FD o_channel -> o_clerk_group must surface as the
  // strongest pair.
  ASSERT_FALSE(findings->empty());
  const ColumnPairCorrelation& top = (*findings)[0];
  EXPECT_TRUE((top.column_a == "o_channel" &&
               top.column_b == "o_clerk_group") ||
              (top.column_a == "o_clerk_group" && top.column_b == "o_channel"))
      << top.column_a << " / " << top.column_b;
  EXPECT_GT(top.strength, 0.8);
  // Independent pairs must not be reported with high strength.
  for (const auto& f : *findings) {
    if (f.column_a == "o_custkey" || f.column_b == "o_custkey") {
      EXPECT_LT(f.strength, 0.5) << f.column_a << "/" << f.column_b;
    }
  }
}

TEST_F(ExtensionsTest, CordsDetectsZipStateFd) {
  RestaurantConfig config;
  config.num_restaurants = 2000;
  config.num_reviews = 10;
  config.num_tweets = 10;
  ASSERT_TRUE(GenerateRestaurantData(&catalog_, config).ok());
  // Flatten the nested addresses into a helper table for column analysis.
  auto file = catalog_.OpenTable("restaurant");
  ASSERT_TRUE(file.ok());
  std::vector<Value> flat;
  for (const Value& row : MustReadAll(**file)) {
    const Value& primary = row.FindField("rs_addr")->array()[0];
    flat.push_back(MakeRow({{"zip", *primary.FindField("zip")},
                            {"state", *primary.FindField("state")},
                            {"rid", *row.FindField("rs_id")}}));
  }
  ASSERT_TRUE(catalog_.CreateTable("restaurant_flat", flat).ok());
  CordsOptions options;
  auto findings = DetectCorrelations(&catalog_, "restaurant_flat",
                                     {"zip", "state"}, options);
  ASSERT_TRUE(findings.ok());
  ASSERT_EQ(findings->size(), 1u);
  EXPECT_TRUE((*findings)[0].fd_a_to_b)
      << "zip (nearly) determines state";
  EXPECT_FALSE((*findings)[0].fd_b_to_a);
}

TEST_F(ExtensionsTest, CordsRejectsTooFewColumns) {
  EXPECT_FALSE(
      DetectCorrelations(&catalog_, "orders", {"o_channel"}, CordsOptions())
          .ok());
  EXPECT_FALSE(DetectCorrelations(&catalog_, "no_such_table",
                                  {"a", "b"}, CordsOptions())
                   .ok());
}

// --- predicate reordering ---

TEST_F(ExtensionsTest, MeasurePredicatesOrdersByRank) {
  // A cheap selective predicate must come before an expensive unselective
  // UDF, regardless of the input order.
  ExprPtr cheap_selective = Eq(Col("o_channel"), LitString("web"));  // ~20%
  ExprPtr expensive_loose =
      MakeHashFilterUdf("loose", {"o_orderkey"}, 0.9, 100.0);
  PredicateOrderOptions options;
  auto measured = MeasurePredicates(&catalog_, "orders",
                                    {expensive_loose, cheap_selective},
                                    options);
  ASSERT_TRUE(measured.ok()) << measured.status().ToString();
  ASSERT_EQ(measured->size(), 2u);
  EXPECT_EQ((*measured)[0].predicate, cheap_selective)
      << "rank ordering must put the cheap selective predicate first";
  EXPECT_NEAR((*measured)[0].selectivity, 0.2, 0.08);
  EXPECT_NEAR((*measured)[1].selectivity, 0.9, 0.08);
}

TEST_F(ExtensionsTest, ReorderConjunctionPreservesSemantics) {
  ExprPtr filter = And(MakeHashFilterUdf("f1", {"o_orderkey"}, 0.8, 50.0),
                       Eq(Col("o_clerk_group"), LitInt(2)));
  auto reordered =
      ReorderConjunction(&catalog_, "orders", filter, PredicateOrderOptions());
  ASSERT_TRUE(reordered.ok());
  // Same rows pass before and after reordering.
  auto file = catalog_.OpenTable("orders");
  ASSERT_TRUE(file.ok());
  for (const Value& row : MustReadAll(**file)) {
    auto a = filter->Eval(row);
    auto b = (*reordered)->Eval(row);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->bool_value(), b->bool_value());
  }
  // Single conjuncts and null filters pass through.
  auto single = ReorderConjunction(&catalog_, "orders",
                                   Eq(Col("o_clerk_group"), LitInt(1)),
                                   PredicateOrderOptions());
  ASSERT_TRUE(single.ok());
  auto null_filter = ReorderConjunction(&catalog_, "orders", nullptr,
                                        PredicateOrderOptions());
  ASSERT_TRUE(null_filter.ok());
  EXPECT_EQ(*null_filter, nullptr);
}

TEST_F(ExtensionsTest, DriverReorderFlagKeepsResultsCorrect) {
  DynoOptions options = MakeOptions();
  options.reorder_local_predicates = true;
  DynoDriver driver(&engine_, &catalog_, &store_, options);
  Query q8 = MakeTpchQ8Prime();
  auto report = driver.Execute(q8);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto oracle = NaiveEvaluateJoinBlock(&catalog_, q8.join_block);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(report->result_records, oracle->size());
}

// --- conditional re-optimization ---

TEST_F(ExtensionsTest, ThresholdReducesOptimizerCalls) {
  Query q8 = MakeTpchQ8Prime();
  DynoOptions always = MakeOptions();
  DynoDriver driver_always(&engine_, &catalog_, &store_, always);
  auto report_always = driver_always.Execute(q8);
  ASSERT_TRUE(report_always.ok());

  DynoOptions lax = MakeOptions();
  lax.reopt_row_error_threshold = 1e9;  // effectively never re-plan
  StatsStore store2;
  DynoDriver driver_lax(&engine_, &catalog_, &store2, lax);
  auto report_lax = driver_lax.Execute(q8);
  ASSERT_TRUE(report_lax.ok()) << report_lax.status().ToString();
  EXPECT_LT(report_lax->optimizer_calls, report_always->optimizer_calls);
  // Results identical either way.
  EXPECT_EQ(report_lax->result_records, report_always->result_records);
}

TEST_F(ExtensionsTest, ZeroThresholdReoptimizesEveryStep) {
  DynoOptions options = MakeOptions();
  options.reopt_row_error_threshold = 0.0;
  DynoDriver driver(&engine_, &catalog_, &store_, options);
  auto report = driver.Execute(MakeTpchQ8Prime());
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->optimizer_calls, 3);
}

// --- adaptive broadcast fallback (§8 dynamic join) ---

TEST_F(ExtensionsTest, FallbackRescuesUnderestimatedBroadcast) {
  // Tiny task memory + optimistic margins make some chosen broadcast
  // infeasible at runtime; with the fallback the query must still finish
  // with correct results.
  ClusterConfig config = MakeConfig();
  config.memory_per_task_bytes = 2 * 1024;
  MapReduceEngine engine(&dfs_, config);
  DynoOptions options = MakeOptions();
  options.cost.max_memory_bytes = 64 * 1024;  // optimizer believes 64K
  options.cost.estimated_build_margin = 1.0;
  options.sync_cost_memory = false;  // keep the deliberate lie above
  options.adaptive_join_fallback = true;
  DynoDriver driver(&engine, &catalog_, &store_, options);
  Query q10 = MakeTpchQ10();
  auto report = driver.Execute(q10);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->broadcast_fallbacks, 0)
      << "the lied-about memory budget must have triggered a fallback";
  auto oracle = NaiveEvaluateJoinBlock(&catalog_, q10.join_block);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(report->result_records, oracle->size());
}

TEST_F(ExtensionsTest, WithoutFallbackSameQueryDies) {
  ClusterConfig config = MakeConfig();
  config.memory_per_task_bytes = 2 * 1024;
  MapReduceEngine engine(&dfs_, config);
  DynoOptions options = MakeOptions();
  options.cost.max_memory_bytes = 64 * 1024;
  options.cost.estimated_build_margin = 1.0;
  options.sync_cost_memory = false;  // keep the deliberate lie above
  options.adaptive_join_fallback = false;  // Jaql semantics
  StatsStore store2;
  DynoDriver driver(&engine, &catalog_, &store2, options);
  auto report = driver.Execute(MakeTpchQ10());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kOutOfMemory);
}

// --- multi-block queries ---

TEST_F(ExtensionsTest, MultiBlockChainsThroughBlockReference) {
  MultiBlockQuery query;
  // Block 1: customers joined with their orders in a date window.
  MultiBlockQuery::Block first;
  first.name = "window";
  first.join_block.tables = {{"customer", "c"}, {"orders", "o"}};
  first.join_block.edges = {{"c", "c_custkey", "o", "o_custkey"}};
  first.join_block.predicates = {
      {Ge(Col("o_orderdate"), LitInt(19950101)), {"o"}}};
  first.join_block.output_columns = {"c_custkey", "c_nationkey",
                                     "o_orderkey"};
  // Block 2: join the intermediate with nation.
  MultiBlockQuery::Block second;
  second.name = "named";
  second.join_block.tables = {{"@block:window", "w"}, {"nation", "n"}};
  second.join_block.edges = {{"w", "c_nationkey", "n", "n_nationkey"}};
  second.join_block.output_columns = {"c_custkey", "n_name", "o_orderkey"};
  query.blocks = {first, second};

  DynoDriver driver(&engine_, &catalog_, &store_, MakeOptions());
  auto report = driver.ExecuteMultiBlock(query);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Oracle: same thing as one 3-way block.
  JoinBlock flat;
  flat.tables = {{"customer", "c"}, {"orders", "o"}, {"nation", "n"}};
  flat.edges = {{"c", "c_custkey", "o", "o_custkey"},
                {"c", "c_nationkey", "n", "n_nationkey"}};
  flat.predicates = {{Ge(Col("o_orderdate"), LitInt(19950101)), {"o"}}};
  flat.output_columns = {"c_custkey", "n_name", "o_orderkey"};
  auto oracle = NaiveEvaluateJoinBlock(&catalog_, flat);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(report->result_records, oracle->size());
}

TEST_F(ExtensionsTest, MultiBlockRespectsDeclarationIndependentOrder) {
  // Blocks declared out of dependency order still execute correctly.
  MultiBlockQuery query;
  MultiBlockQuery::Block consumer;
  consumer.name = "consumer";
  consumer.join_block.tables = {{"@block:base", "b"}, {"nation", "n"}};
  consumer.join_block.edges = {{"b", "c_nationkey", "n", "n_nationkey"}};
  MultiBlockQuery::Block base;
  base.name = "base";
  base.join_block.tables = {{"customer", "c"}};
  base.join_block.predicates = {
      {Lt(Col("c_custkey"), LitInt(10)), {"c"}}};
  query.blocks = {consumer, base};
  DynoDriver driver(&engine_, &catalog_, &store_, MakeOptions());
  auto report = driver.ExecuteMultiBlock(query);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->result_records, 10u);
}

TEST_F(ExtensionsTest, MultiBlockErrorCases) {
  DynoDriver driver(&engine_, &catalog_, &store_, MakeOptions());
  MultiBlockQuery empty;
  EXPECT_FALSE(driver.ExecuteMultiBlock(empty).ok());

  MultiBlockQuery unknown_ref;
  MultiBlockQuery::Block block;
  block.name = "a";
  block.join_block.tables = {{"@block:nope", "x"}};
  unknown_ref.blocks = {block};
  EXPECT_FALSE(driver.ExecuteMultiBlock(unknown_ref).ok());

  MultiBlockQuery cyclic;
  MultiBlockQuery::Block b1;
  b1.name = "one";
  b1.join_block.tables = {{"@block:two", "x"}};
  MultiBlockQuery::Block b2;
  b2.name = "two";
  b2.join_block.tables = {{"@block:one", "y"}};
  cyclic.blocks = {b1, b2};
  EXPECT_FALSE(driver.ExecuteMultiBlock(cyclic).ok());

  MultiBlockQuery dup;
  MultiBlockQuery::Block d;
  d.name = "same";
  d.join_block.tables = {{"customer", "c"}};
  dup.blocks = {d, d};
  EXPECT_FALSE(driver.ExecuteMultiBlock(dup).ok());
}

// --- SQL end to end ---

TEST_F(ExtensionsTest, ParsedSqlRunsThroughDynoAndMatchesOracle) {
  auto q = ParseQuery(
      "SELECT c_name, n_name FROM customer c, nation n "
      "WHERE c.c_nationkey = n.n_nationkey AND c.c_acctbal > 5000.0");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  DynoDriver driver(&engine_, &catalog_, &store_, MakeOptions());
  auto report = driver.Execute(*q);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto oracle = NaiveEvaluateJoinBlock(&catalog_, q->join_block);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(report->result_records, oracle->size());
}

}  // namespace
}  // namespace dyno
