// Additional MapReduce-engine edge cases: multi-input jobs, pinned reducer
// counts, empty inputs, output-path collisions, reduce errors, and the
// counters' bookkeeping contracts.

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "mr/engine.h"
#include "storage/dfs.h"

namespace dyno {
namespace {

Value Row(int64_t id, int64_t group) {
  return MakeRow({{"id", Value::Int(id)}, {"g", Value::Int(group)}});
}

class MrExtraTest : public ::testing::Test {
 protected:
  MrExtraTest() : engine_(&dfs_, MakeConfig()) {}

  static ClusterConfig MakeConfig() {
    ClusterConfig config;
    config.job_startup_ms = 100;
    config.map_slots = 4;
    config.reduce_slots = 3;
    return config;
  }

  std::shared_ptr<DfsFile> MakeInput(int rows, const std::string& path,
                                     int64_t id_offset = 0) {
    std::vector<Value> data;
    for (int i = 0; i < rows; ++i) data.push_back(Row(i + id_offset, i % 4));
    auto file = WriteRows(&dfs_, path, data, 256);
    EXPECT_TRUE(file.ok());
    return *file;
  }

  Dfs dfs_;
  MapReduceEngine engine_;
};

TEST_F(MrExtraTest, MultiInputJobTagsBothSides) {
  auto left = MakeInput(30, "/left");
  auto right = MakeInput(20, "/right", 1000);
  JobSpec spec;
  spec.name = "two-inputs";
  spec.output_path = "/out";
  auto tag = [](int64_t t) -> MapFn {
    return [t](const Value& record, MapContext* ctx) -> Status {
      ctx->Emit(*record.FindField("g"),
                MakeRow({{"t", Value::Int(t)}, {"r", record}}));
      return Status::OK();
    };
  };
  spec.inputs = {{left, {}, tag(0), 1.0}, {right, {}, tag(1), 1.0, {}}};
  spec.reduce_fn = [](const Value& key, const std::vector<Value>& values,
                      ReduceContext* ctx) -> Status {
    int64_t lefts = 0;
    int64_t rights = 0;
    for (const Value& v : values) {
      (v.FindField("t")->int_value() == 0 ? lefts : rights) += 1;
    }
    ctx->Output(MakeRow({{"g", key},
                         {"l", Value::Int(lefts)},
                         {"r", Value::Int(rights)}}));
    return Status::OK();
  };
  auto result = engine_.Submit(spec);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok());
  auto rows = ReadAllRows(*result->output);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);
  int64_t total_left = 0;
  int64_t total_right = 0;
  for (const Value& row : *rows) {
    total_left += row.FindField("l")->int_value();
    total_right += row.FindField("r")->int_value();
  }
  EXPECT_EQ(total_left, 30);
  EXPECT_EQ(total_right, 20);
}

TEST_F(MrExtraTest, PinnedReducerCountHonored) {
  auto input = MakeInput(100, "/in");
  JobSpec spec;
  spec.name = "pinned";
  spec.output_path = "/out";
  spec.num_reduce_tasks = 5;
  spec.inputs = {{input, {}, [](const Value& r, MapContext* ctx) {
                    ctx->Emit(*r.FindField("id"), r);
                    return Status::OK();
                  }, 1.0, {}}};
  spec.reduce_fn = [](const Value&, const std::vector<Value>& values,
                      ReduceContext* ctx) -> Status {
    for (const Value& v : values) ctx->Output(v);
    return Status::OK();
  };
  auto result = engine_.Submit(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reduce_tasks_run, 5);
  EXPECT_EQ(result->counters.output_records, 100u);
}

TEST_F(MrExtraTest, EmptyInputYieldsEmptyOutput) {
  auto empty = WriteRows(&dfs_, "/empty", {});
  ASSERT_TRUE(empty.ok());
  JobSpec spec;
  spec.name = "empty";
  spec.output_path = "/out";
  spec.inputs = {{*empty, {}, [](const Value& r, MapContext* ctx) {
                    ctx->Output(r);
                    return Status::OK();
                  }, 1.0, {}}};
  auto result = engine_.Submit(spec);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->status.ok());
  EXPECT_EQ(result->output->num_records(), 0u);
  EXPECT_EQ(result->map_tasks_run, 0);
}

TEST_F(MrExtraTest, OutputPathCollisionRejected) {
  auto input = MakeInput(10, "/in");
  JobSpec spec;
  spec.name = "dup";
  spec.output_path = "/in";  // already exists
  spec.inputs = {{input, {}, [](const Value& r, MapContext* ctx) {
                    ctx->Output(r);
                    return Status::OK();
                  }, 1.0, {}}};
  EXPECT_FALSE(engine_.Submit(spec).ok());
}

TEST_F(MrExtraTest, ReduceErrorFailsJobAndCleansOutput) {
  auto input = MakeInput(50, "/in");
  JobSpec spec;
  spec.name = "bad-reduce";
  spec.output_path = "/out";
  spec.inputs = {{input, {}, [](const Value& r, MapContext* ctx) {
                    ctx->Emit(*r.FindField("g"), r);
                    return Status::OK();
                  }, 1.0, {}}};
  spec.reduce_fn = [](const Value&, const std::vector<Value>&,
                      ReduceContext*) -> Status {
    return Status::Internal("reduce boom");
  };
  auto result = engine_.Submit(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->status.ok());
  EXPECT_FALSE(dfs_.Exists("/out"));
}

TEST_F(MrExtraTest, CountersAddUpForMapReduceJob) {
  auto input = MakeInput(80, "/in");
  JobSpec spec;
  spec.name = "counters";
  spec.output_path = "/out";
  spec.inputs = {{input, {}, [](const Value& r, MapContext* ctx) {
                    // Drop odd ids at map side.
                    if (r.FindField("id")->int_value() % 2 == 0) {
                      ctx->Emit(*r.FindField("g"), r);
                    }
                    return Status::OK();
                  }, 1.0, {}}};
  spec.reduce_fn = [](const Value&, const std::vector<Value>& values,
                      ReduceContext* ctx) -> Status {
    for (const Value& v : values) ctx->Output(v);
    return Status::OK();
  };
  auto result = engine_.Submit(spec);
  ASSERT_TRUE(result.ok());
  const Counters& counters = result->counters;
  EXPECT_EQ(counters.map_input_records, 80u);
  EXPECT_EQ(counters.map_output_records, 40u);
  EXPECT_EQ(counters.reduce_input_records, 40u);
  EXPECT_EQ(counters.output_records, 40u);
  EXPECT_GT(counters.map_input_bytes, 0u);
  EXPECT_GT(counters.map_output_bytes, 0u);
  EXPECT_GT(counters.output_bytes, 0u);
  EXPECT_EQ(counters.output_bytes, result->output->num_bytes());
}

TEST_F(MrExtraTest, CountersMergeFromAccumulates) {
  Counters a;
  a.map_input_records = 5;
  a.output_bytes = 100;
  Counters b;
  b.map_input_records = 7;
  b.output_bytes = 11;
  b.reduce_input_records = 3;
  a.MergeFrom(b);
  EXPECT_EQ(a.map_input_records, 12u);
  EXPECT_EQ(a.output_bytes, 111u);
  EXPECT_EQ(a.reduce_input_records, 3u);
}

TEST_F(MrExtraTest, ManyConcurrentJobsAllComplete) {
  std::vector<JobSpec> specs;
  for (int j = 0; j < 12; ++j) {
    auto input = MakeInput(40, StrFormat("/in%d", j));
    JobSpec spec;
    spec.name = StrFormat("job%d", j);
    spec.output_path = StrFormat("/out%d", j);
    spec.inputs = {{input, {}, [](const Value& r, MapContext* ctx) {
                      ctx->Output(r);
                      return Status::OK();
                    }, 1.0, {}}};
    specs.push_back(std::move(spec));
  }
  auto results = engine_.SubmitAll(specs);
  ASSERT_TRUE(results.ok());
  for (const JobResult& result : *results) {
    EXPECT_TRUE(result.status.ok());
    EXPECT_EQ(result.counters.output_records, 40u);
  }
}

}  // namespace
}  // namespace dyno
